package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"parahash/internal/faultinject"
	"parahash/internal/manifest"
)

func TestWriteFileAtomicFailureLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dbg")
	boom := errors.New("mid-write failure")
	err := writeFileAtomic(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "partial bytes"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(entries) != 0 {
		t.Fatalf("failed write left files behind: %v", entries)
	}
}

func TestWriteFileAtomicSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dbg")
	if err := writeFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "complete")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "complete" {
		t.Fatalf("content = %q", data)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf(".tmp sibling survives success: %v", err)
	}
}

func TestWriteFileAtomicFailurePreservesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dbg")
	if err := os.WriteFile(path, []byte("previous good output"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	if err := writeFileAtomic(path, func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "previous good output" {
		t.Fatalf("failed overwrite damaged previous output: %q", data)
	}
}

func TestRunResumeRequiresCheckpointDir(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-profile", "tiny", "-resume"}, &buf); err == nil {
		t.Fatal("-resume without -checkpoint-dir accepted")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	out1 := filepath.Join(dir, "first.dbg")
	out2 := filepath.Join(dir, "second.dbg")
	ck := filepath.Join(dir, "ck")
	base := []string{"-profile", "tiny", "-partitions", "8", "-threads", "4",
		"-checkpoint-dir", ck}

	var buf bytes.Buffer
	if err := run(append(base, "-out", out1), &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(append(base, "-out", out2, "-resume"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "8 partitions resumed, 0 rebuilt") {
		t.Errorf("resume summary missing:\n%s", buf.String())
	}
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed output is not byte-identical to the original")
	}
}

// TestCrashResumeE2E is the end-to-end crash test: a child process (this
// test binary re-executed) is SIGKILLed mid-Step 2 via the env crash point,
// then the build is resumed with -resume and must produce output
// byte-identical to an uninterrupted run.
func TestCrashResumeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec e2e skipped in -short")
	}
	dir := t.TempDir()
	cleanOut := filepath.Join(dir, "clean.dbg")
	crashOut := filepath.Join(dir, "crash.dbg")
	buildArgs := func(out, ck string) []string {
		return []string{"-profile", "tiny", "-partitions", "8", "-threads", "4",
			"-checkpoint-dir", ck, "-out", out}
	}

	// Reference: uninterrupted checkpointed run.
	var buf bytes.Buffer
	if err := run(buildArgs(cleanOut, filepath.Join(dir, "ck-clean")), &buf); err != nil {
		t.Fatal(err)
	}

	// Crashed run: the child SIGKILLs itself after journalling the 5th
	// Step 2 partition.
	ck := filepath.Join(dir, "ck")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashResumeHelper$")
	cmd.Env = append(os.Environ(),
		"PARAHASH_E2E_HELPER=1",
		"PARAHASH_E2E_ARGS="+strings.Join(buildArgs(crashOut, ck), "\x1f"),
		faultinject.CrashEnv+"=step2.partition:5")
	outBytes, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("crash-pointed child exited cleanly:\n%s", outBytes)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != -1 {
		t.Fatalf("child not killed by signal: %v\n%s", err, outBytes)
	}

	// The SIGKILL mid-build must leave no output file (atomic publication)
	// and a manifest claiming exactly the 5 journalled partitions.
	if _, err := os.Stat(crashOut); !os.IsNotExist(err) {
		t.Fatalf("crashed run left a partial output file: %v", err)
	}
	m, err := manifest.Load(filepath.Join(ck, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Step1Done || len(m.Step2) != 5 {
		t.Fatalf("post-crash manifest: step1_done=%v step2=%d, want true/5",
			m.Step1Done, len(m.Step2))
	}

	// Resume: the survivor partitions are skipped, the rest rebuilt, and
	// the final graph is byte-identical to the uninterrupted run.
	buf.Reset()
	if err := run(append(buildArgs(crashOut, ck), "-resume"), &buf); err != nil {
		t.Fatalf("resume failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "5 partitions resumed, 0 rebuilt") {
		t.Errorf("resume summary missing:\n%s", buf.String())
	}
	a, err := os.ReadFile(cleanOut)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(crashOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed output differs from uninterrupted run")
	}
}

// TestCrashResumeHelper is the re-exec target for TestCrashResumeE2E; it is
// a no-op in a normal test run.
func TestCrashResumeHelper(t *testing.T) {
	if os.Getenv("PARAHASH_E2E_HELPER") != "1" {
		t.Skip("helper for TestCrashResumeE2E")
	}
	args := strings.Split(os.Getenv("PARAHASH_E2E_ARGS"), "\x1f")
	if err := run(args, io.Discard); err != nil {
		t.Fatal(err)
	}
}
