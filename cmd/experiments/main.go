// Command experiments regenerates the tables and figures of the ParaHash
// paper's evaluation section on the simulated substrate.
//
// Usage:
//
//	experiments -list
//	experiments -run table3
//	experiments -run all -scale 0.5
//
// Reported seconds are virtual time from the calibrated cost model with
// throughputs scaled to the datasets, so magnitudes are comparable to the
// paper's full-scale numbers; see DESIGN.md and EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"parahash/internal/exps"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		id    = fs.String("run", "all", "experiment id to run, or 'all'")
		scale = fs.Float64("scale", 1, "dataset scale factor (smaller = faster)")
		list  = fs.Bool("list", false, "list experiment ids and exit")
		csv   = fs.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range exps.List() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}

	opts := exps.Options{Scale: *scale}
	ids := []string{*id}
	if *id == "all" {
		ids = exps.List()
	}
	for _, name := range ids {
		rep, err := exps.Run(name, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *csv {
			fmt.Fprintf(stdout, "# %s: %s\n%s\n", rep.ID, rep.Title, rep.CSV())
		} else {
			fmt.Fprintln(stdout, rep.Format())
		}
	}
	return nil
}
