// Package parahash_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (via internal/exps) plus the
// ablation benchmarks for the design choices DESIGN.md calls out: the
// state-transfer partial locking, the 2-bit superkmer encoding, the
// Property 1 table pre-sizing, and the adjacency extension bases.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Per-experiment reports can be printed with cmd/experiments.
package parahash_test

import (
	"errors"
	"testing"

	"parahash"
	"parahash/internal/baseline/bloom"
	"parahash/internal/baseline/lockfree"
	"parahash/internal/costmodel"
	"parahash/internal/exps"
	"parahash/internal/hashtable"
	"parahash/internal/msp"
	"parahash/internal/simulate"
)

// benchScale keeps benchmark iterations fast; cmd/experiments regenerates
// the same artefacts at full (scale 1) size.
const benchScale = 0.1

// benchExperiment drives one paper artefact end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := exps.Options{Scale: benchScale}
	for i := 0; i < b.N; i++ {
		rep, err := exps.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// One benchmark per table and figure of the evaluation section.

func BenchmarkTable1DatasetProperties(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2HashTableSize(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3EndToEnd(b *testing.B)          { benchExperiment(b, "table3") }
func BenchmarkFig6MinimizerLength(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7CPUvsGPUHashing(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8GPUBreakdown(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9Scalability(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10SOAPComparison(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11Coprocessing(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12Pipelining(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkFig13ModelCase1(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14ModelCase2(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkContentionReduction(b *testing.B)     { benchExperiment(b, "contention") }

// benchReads memoises a moderate workload for the ablations.
func benchReads(b *testing.B) []parahash.Read {
	b.Helper()
	d, err := simulate.Generate(simulate.HumanChr14Profile().Scale(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	return d.Reads
}

func benchEdges(b *testing.B, reads []parahash.Read, k, p int) []msp.KmerEdge {
	b.Helper()
	var edges []msp.KmerEdge
	for _, rd := range reads {
		for _, sk := range msp.SuperkmersFromRead(nil, rd.Bases, k, p) {
			msp.ForEachKmerEdge(sk, k, func(e msp.KmerEdge) { edges = append(edges, e) })
		}
	}
	return edges
}

// BenchmarkAblationLocking compares the state-transfer table against the
// whole-entry-locking baseline on real wall-clock insertion time — the
// design choice of §III-C3.
func BenchmarkAblationLocking(b *testing.B) {
	reads := benchReads(b)
	edges := benchEdges(b, reads, 27, 11)
	slots := hashtable.SizeForKmers(int64(len(edges)), 2, 0.65)

	b.Run("state-transfer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			table, err := hashtable.New(27, slots)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range edges {
				if err := table.InsertEdge(e); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(table.ContentionReduction()*100, "lock-reduction-%")
		}
	})
	b.Run("whole-entry-mutex", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			table, err := hashtable.NewMutexTable(27, slots)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range edges {
				if err := table.InsertEdge(e); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(table.LockAcquisitions())/float64(len(edges)), "locks/access")
		}
	})
}

// BenchmarkAblationEncoding measures the disk-volume effect of the 2-bit
// superkmer encoding (§III-B: encoded output is ~1/4 of plain text).
func BenchmarkAblationEncoding(b *testing.B) {
	reads := benchReads(b)
	for i := 0; i < b.N; i++ {
		var encoded, plain int64
		sc := msp.Scanner{K: 27, P: 11}
		var sks []msp.Superkmer
		for _, rd := range reads {
			sks = sc.Superkmers(sks[:0], rd.Bases)
			for _, sk := range sks {
				encoded += int64(msp.EncodedSize(len(sk.Bases)))
				plain += int64(msp.PlainEncodedSize(len(sk.Bases)))
			}
		}
		b.ReportMetric(float64(encoded)/float64(plain), "encoded/plain")
	}
}

// BenchmarkAblationPresize compares Property 1 pre-sizing against starting
// tiny and growing — the resizing cost §III-C avoids.
func BenchmarkAblationPresize(b *testing.B) {
	reads := benchReads(b)
	edges := benchEdges(b, reads, 27, 11)

	insertAll := func(b *testing.B, startSlots int) {
		table, err := hashtable.NewBackend(hashtable.BackendStateTransfer, 27, startSlots)
		if err != nil {
			b.Fatal(err)
		}
		grows := 0
		for _, e := range edges {
			for {
				err := table.InsertEdge(e)
				if err == nil {
					break
				}
				if !errors.Is(err, hashtable.ErrTableFull) {
					b.Fatal(err)
				}
				if table, err = table.Grow(); err != nil {
					b.Fatal(err)
				}
				grows++
			}
		}
		b.ReportMetric(float64(grows), "grows")
	}

	b.Run("presized", func(b *testing.B) {
		slots := hashtable.SizeForKmers(int64(len(edges)), 2, 0.65)
		for i := 0; i < b.N; i++ {
			insertAll(b, slots)
		}
	})
	b.Run("grow-from-small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			insertAll(b, 1024)
		}
	})
}

// BenchmarkAblationExtensionBases quantifies what the paper's two extra
// base pairs per superkmer preserve: without them, the boundary adjacency
// observations are lost and the graph's edge weights are wrong.
func BenchmarkAblationExtensionBases(b *testing.B) {
	reads := benchReads(b)
	for i := 0; i < b.N; i++ {
		var with, without int64
		for _, rd := range reads {
			for _, sk := range msp.SuperkmersFromRead(nil, rd.Bases, 27, 11) {
				msp.ForEachKmerEdge(sk, 27, func(e msp.KmerEdge) {
					if e.Left != msp.NoBase {
						with++
					}
					if e.Right != msp.NoBase {
						with++
					}
				})
				// Without extensions, the superkmer's boundary kmers lose
				// their outward observations.
				stripped := sk
				stripped.HasLeft, stripped.HasRight = false, false
				msp.ForEachKmerEdge(stripped, 27, func(e msp.KmerEdge) {
					if e.Left != msp.NoBase {
						without++
					}
					if e.Right != msp.NoBase {
						without++
					}
				})
			}
		}
		b.ReportMetric(100*float64(with-without)/float64(with), "edges-lost-%")
	}
}

// BenchmarkEndToEndBuild is the headline wall-clock benchmark: the full
// two-step pipeline on the scaled Chr14 stand-in.
func BenchmarkEndToEndBuild(b *testing.B) {
	reads := benchReads(b)
	cfg := parahash.DefaultConfig()
	cfg.NumPartitions = 32
	cfg.KeepSubgraphs = false
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parahash.Build(reads, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashingThroughput measures raw concurrent-table insertion speed
// on this host (wall clock, not virtual time).
func BenchmarkHashingThroughput(b *testing.B) {
	reads := benchReads(b)
	edges := benchEdges(b, reads, 27, 11)
	slots := hashtable.SizeForKmers(int64(len(edges)), 2, 0.65)
	table, err := hashtable.New(27, slots)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := table.InsertEdge(edges[i%len(edges)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSPThroughput measures raw superkmer scanning speed.
func BenchmarkMSPThroughput(b *testing.B) {
	reads := benchReads(b)
	sc := msp.Scanner{K: 27, P: 11}
	var sks []msp.Superkmer
	var bases int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := reads[i%len(reads)]
		sks = sc.Superkmers(sks[:0], rd.Bases)
		bases += int64(len(rd.Bases))
	}
	b.ReportMetric(float64(bases)/b.Elapsed().Seconds()/1e6, "Mbases/s")
}

// BenchmarkEq2Estimate exercises the analytic performance model itself.
func BenchmarkEq2Estimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		costmodel.EstimateCoprocessingSeconds(132, 144, 2)
	}
}

// BenchmarkCounterBaselines contrasts the full <vertex, edges> construction
// against the counting-only baselines the paper's related work surveys:
// the Jellyfish-style lock-free CAS counter [5] and the BFCounter-style
// Bloom counter [10]. The counters are faster and smaller but produce no
// adjacency — the gap ParaHash's table exists to close.
func BenchmarkCounterBaselines(b *testing.B) {
	reads := benchReads(b)
	edges := benchEdges(b, reads, 27, 11)
	slots := hashtable.SizeForKmers(int64(len(edges)), 2, 0.65)

	b.Run("parahash-graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			table, err := hashtable.New(27, slots)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range edges {
				if err := table.InsertEdge(e); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(table.MemoryBytes())/(1<<20), "MB")
		}
	})
	b.Run("lockfree-counter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := lockfree.New(slots)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range edges {
				if err := c.Add(e.Canon); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.Capacity()*8)/(1<<20), "MB")
		}
	})
	b.Run("bloom-counter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := bloom.NewCounter(len(edges)/2, 0.01)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range edges {
				c.Add(e.Canon)
			}
			b.ReportMetric(float64(c.MemoryBytes())/(1<<20), "MB")
		}
	})
}
