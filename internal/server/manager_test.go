package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parahash"
	"parahash/internal/faultinject"
	"parahash/internal/hashtable"
	"parahash/internal/manifest"
)

// testBase is a fast build configuration for server tests.
func testBase() parahash.Config {
	cfg := parahash.DefaultConfig()
	cfg.NumPartitions = 8
	cfg.CPUThreads = 4
	cfg.NumGPUs = 0
	return cfg
}

// tinyFASTQ renders the tiny synthetic dataset as FASTQ bytes.
func tinyFASTQ(t testing.TB) []byte {
	t.Helper()
	d, err := parahash.GenerateDataset(parahash.TinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := parahash.WriteFASTQ(&buf, d.Reads); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// oracleGraphBytes builds the same input fault-free, without a server or a
// checkpoint, and returns the serialised graph — the byte-identity
// reference for every recovery test.
func oracleGraphBytes(t testing.TB, input []byte, cfg parahash.Config) []byte {
	t.Helper()
	reads, err := parahash.ParseReads(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = parahash.CheckpointConfig{}
	res, err := parahash.Build(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Graph.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitJobState polls until the job reaches want (fails on a different
// terminal state or timeout).
func waitJobState(t testing.TB, m *Manager, id string, want State) JobRecord {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		rec, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == want {
			return rec
		}
		if rec.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, rec.State, rec.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, rec.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitStep2Claims polls a job's checkpoint manifest until n Step 2
// partitions are journalled.
func waitStep2Claims(t testing.TB, m *Manager, id string, n int) {
	t.Helper()
	mpath := filepath.Join(m.checkpointDir(id), "manifest.json")
	deadline := time.Now().Add(time.Minute)
	for {
		if man, err := manifest.Load(mpath); err == nil && len(man.Step2) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never journalled %d step 2 claims", id, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitBuildQueryLifecycle(t *testing.T) {
	input := tinyFASTQ(t)
	root := t.TempDir()
	m, err := Open(Options{Root: root, Base: testBase(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())
	if !m.Ready() {
		t.Fatal("manager not ready after Open")
	}

	rec, err := m.Submit(JobSpec{}, bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	done := waitJobState(t, m, rec.ID, StateDone)
	if done.Vertices == 0 || done.Edges == 0 {
		t.Fatalf("done job reports empty graph: %+v", done)
	}
	if done.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", done.Attempts)
	}

	// The published graph must match the fault-free oracle byte for byte.
	got, err := os.ReadFile(m.GraphPath(rec.ID))
	if err != nil {
		t.Fatal(err)
	}
	want := oracleGraphBytes(t, input, testBase())
	if !bytes.Equal(got, want) {
		t.Fatalf("server graph differs from oracle: %d vs %d bytes", len(got), len(want))
	}

	// Query a k-mer that is present (take it from the oracle graph) and
	// one that is almost surely absent.
	g, err := parahash.ReadGraph(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	present := g.Vertices[len(g.Vertices)/2].Kmer.String(g.K)
	res, err := m.Query(rec.ID, present)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Present || res.Multiplicity < 1 {
		t.Fatalf("known vertex not found: %+v", res)
	}
	absent := strings.Repeat("AC", g.K)[:g.K]
	if res, err = m.Query(rec.ID, absent); err != nil {
		t.Fatal(err)
	} else if res.Present && res.Multiplicity == 0 {
		t.Fatalf("inconsistent query result: %+v", res)
	}
	if _, err := m.Query(rec.ID, "ACGT"); err == nil {
		t.Error("wrong-length query k-mer accepted")
	}
	if _, err := m.Query(rec.ID, strings.Repeat("N", g.K)); err == nil {
		t.Error("non-ACGT query k-mer accepted")
	}
	if _, err := m.Query("j9999", present); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job query error = %v", err)
	}
}

// TestConcurrentAdmissionSerializes is the multi-job admission acceptance
// test: two jobs whose combined Property-1 weight exceeds the budget must
// serialize — the gate's peak stays under budget, one of them queues — and
// both must still complete byte-identical to a solo run.
func TestConcurrentAdmissionSerializes(t *testing.T) {
	input := tinyFASTQ(t)
	base := testBase()

	// Recompute the per-job admission weight the way Submit does, then set
	// the budget to fit one job but not two.
	reads, err := parahash.ParseReads(bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	var totalKmers int64
	for _, r := range reads {
		if n := len(r.Bases) - base.K + 1; n > 0 {
			totalKmers += int64(n)
		}
	}
	slots, err := hashtable.SizeForKmersChecked(totalKmers, base.Lambda, base.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	weight := hashtable.MemoryBytesForBackend(hashtable.BackendStateTransfer, base.K, slots)
	budget := weight + weight/2

	m, err := Open(Options{Root: t.TempDir(), Base: base, MemoryBudgetBytes: budget, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	a, err := m.Submit(JobSpec{}, bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(JobSpec{}, bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if a.WeightBytes != weight || b.WeightBytes != weight {
		t.Fatalf("journalled weights %d/%d, want %d", a.WeightBytes, b.WeightBytes, weight)
	}

	waitJobState(t, m, a.ID, StateDone)
	waitJobState(t, m, b.ID, StateDone)

	s := m.Stats()
	if s.Gate.PeakBytes > budget {
		t.Fatalf("gate peak %d exceeds budget %d — jobs did not serialize", s.Gate.PeakBytes, budget)
	}
	if s.Gate.Waits < 1 {
		t.Errorf("gate waits = %d, want >= 1 (second job should have queued)", s.Gate.Waits)
	}
	if s.Gate.BalanceBytes != 0 {
		t.Errorf("gate balance = %d after both jobs finished, want 0", s.Gate.BalanceBytes)
	}

	want := oracleGraphBytes(t, input, base)
	for _, id := range []string{a.ID, b.ID} {
		got, err := os.ReadFile(m.GraphPath(id))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("job %s graph differs from solo oracle", id)
		}
	}
}

// TestOverloadSheds verifies typed load-shedding: with the queue capped
// below demand, excess submissions fail with ErrQueueFull while every
// accepted job still completes.
func TestOverloadSheds(t *testing.T) {
	input := tinyFASTQ(t)
	m, err := Open(Options{Root: t.TempDir(), Base: testBase(), MaxQueue: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	var accepted []string
	shed := 0
	for i := 0; i < 5; i++ {
		rec, err := m.Submit(JobSpec{}, bytes.NewReader(input))
		switch {
		case err == nil:
			accepted = append(accepted, rec.ID)
		case errors.Is(err, ErrQueueFull):
			shed++
		default:
			t.Fatalf("submit %d: unexpected error %v", i, err)
		}
	}
	if len(accepted) == 0 {
		t.Fatal("every submission was shed")
	}
	if shed == 0 {
		t.Fatal("no submission was shed despite MaxQueue=2")
	}
	if got := m.Stats().Shed; int(got) != shed {
		t.Errorf("Stats().Shed = %d, want %d", got, shed)
	}
	for _, id := range accepted {
		waitJobState(t, m, id, StateDone)
	}
}

// TestKillRecoveryResumesByteIdentical is the in-process crash-recovery
// acceptance test: wedge a job mid-Step-2 with three partitions
// journalled, kill the manager the way a SIGKILL would (no terminal
// journalling), reopen over the same directory, and require the resumed
// job to finish byte-identical to a fault-free run.
func TestKillRecoveryResumesByteIdentical(t *testing.T) {
	input := tinyFASTQ(t)
	base := testBase()
	root := t.TempDir()

	plan := faultinject.Plan{StallPoints: []faultinject.PointFault{{Point: "step2.partition", Hit: 3}}}
	m1, err := Open(Options{
		Root: root, Base: base, Logf: t.Logf,
		WrapJobCtx: func(_ string, ctx context.Context, cancel context.CancelCauseFunc) context.Context {
			return plan.ApplyPoints(ctx, cancel)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m1.Submit(JobSpec{}, bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	waitStep2Claims(t, m1, rec.ID, 3)
	m1.Kill()

	// The axe fell with the job journalled running: exactly what a real
	// SIGKILL leaves behind.
	j, err := OpenJournal(filepath.Join(root, "jobs.json"))
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := j.Get(rec.ID); r.State != StateRunning {
		t.Fatalf("journal after kill says %s, want running", r.State)
	}

	m2, err := Open(Options{Root: root, Base: base, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Drain(context.Background())
	if got := m2.Recovery().Requeued; len(got) != 1 || got[0] != rec.ID {
		t.Fatalf("recovery requeued %v, want [%s]", got, rec.ID)
	}
	done := waitJobState(t, m2, rec.ID, StateDone)
	if !done.Resumed {
		t.Error("recovered job not marked resumed")
	}

	got, err := os.ReadFile(m2.GraphPath(rec.ID))
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleGraphBytes(t, input, base); !bytes.Equal(got, want) {
		t.Fatal("recovered graph differs from fault-free oracle")
	}
}

// TestStartupSweepsOrphanedTmp verifies the satellite requirement that
// server startup sweeps crash litter: stray .tmp files in an unfinished
// job's checkpoint data directory (a crash mid-publish) and next to the
// journal are gone after restart.
func TestStartupSweepsOrphanedTmp(t *testing.T) {
	input := tinyFASTQ(t)
	base := testBase()
	root := t.TempDir()

	plan := faultinject.Plan{StallPoints: []faultinject.PointFault{{Point: "step2.partition", Hit: 2}}}
	m1, err := Open(Options{
		Root: root, Base: base, Logf: t.Logf,
		WrapJobCtx: func(_ string, ctx context.Context, cancel context.CancelCauseFunc) context.Context {
			return plan.ApplyPoints(ctx, cancel)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m1.Submit(JobSpec{}, bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	waitStep2Claims(t, m1, rec.ID, 2)
	m1.Kill()

	// Model a crash mid-publish: in-flight .tmp litter in the checkpoint
	// data directory and a half-renamed journal.
	dataDir := filepath.Join(root, "jobs", rec.ID, "checkpoint", "data")
	strayCk := filepath.Join(dataDir, "subgraph-999.bin.tmp")
	if err := os.WriteFile(strayCk, []byte("torn write"), 0o666); err != nil {
		t.Fatal(err)
	}
	strayJournal := filepath.Join(root, "jobs.json.tmp")
	if err := os.WriteFile(strayJournal, []byte("{torn"), 0o666); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Root: root, Base: base, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Drain(context.Background())
	if m2.Recovery().TmpSwept < 2 {
		t.Errorf("recovery swept %d tmp files, want >= 2", m2.Recovery().TmpSwept)
	}
	for _, p := range []string{strayCk, strayJournal} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stray file %s survived restart", p)
		}
	}
	waitJobState(t, m2, rec.ID, StateDone)

	// After the drain there must be no .tmp files anywhere under the data
	// root — the acceptance criterion for clean shutdown state.
	m2.Drain(context.Background())
	assertNoTmpFiles(t, root)
}

// TestDrainCheckpointsRunningJobs verifies graceful shutdown: a running
// job is journalled back to queued with its checkpoint intact, nothing is
// lost, and a new manager resumes it to the oracle graph.
func TestDrainCheckpointsRunningJobs(t *testing.T) {
	input := tinyFASTQ(t)
	base := testBase()
	root := t.TempDir()

	plan := faultinject.Plan{StallPoints: []faultinject.PointFault{{Point: "step2.partition", Hit: 3}}}
	m1, err := Open(Options{
		Root: root, Base: base, Logf: t.Logf,
		WrapJobCtx: func(_ string, ctx context.Context, cancel context.CancelCauseFunc) context.Context {
			return plan.ApplyPoints(ctx, cancel)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m1.Submit(JobSpec{}, bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	waitStep2Claims(t, m1, rec.ID, 3)

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m1.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if m1.Ready() {
		t.Error("drained manager still reports ready")
	}
	if _, err := m1.Submit(JobSpec{}, bytes.NewReader(input)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain = %v, want ErrDraining", err)
	}
	r, err := m1.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != StateQueued || !r.Resumed {
		t.Fatalf("drained job journalled %s (resumed=%v), want queued for resume", r.State, r.Resumed)
	}
	assertNoTmpFiles(t, root)

	m2, err := Open(Options{Root: root, Base: base, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Drain(context.Background())
	waitJobState(t, m2, rec.ID, StateDone)
	got, err := os.ReadFile(m2.GraphPath(rec.ID))
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleGraphBytes(t, input, base); !bytes.Equal(got, want) {
		t.Fatal("drain-resumed graph differs from fault-free oracle")
	}
}

func TestCancelJob(t *testing.T) {
	input := tinyFASTQ(t)
	root := t.TempDir()
	plan := faultinject.Plan{StallPoints: []faultinject.PointFault{{Point: "step2.partition", Hit: 1}}}
	m, err := Open(Options{
		Root: root, Base: testBase(), Logf: t.Logf,
		WrapJobCtx: func(_ string, ctx context.Context, cancel context.CancelCauseFunc) context.Context {
			return plan.ApplyPoints(ctx, cancel)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())
	rec, err := m.Submit(JobSpec{}, bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	waitStep2Claims(t, m, rec.ID, 1)
	if err := m.Cancel(rec.ID); err != nil {
		t.Fatal(err)
	}
	r, err := m.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != StateCanceled {
		t.Fatalf("canceled job journalled %s, want canceled", r.State)
	}
	if err := m.Cancel("j9999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel unknown job = %v, want ErrUnknownJob", err)
	}
}

// assertNoTmpFiles fails if any .tmp file survives under root.
func assertNoTmpFiles(t testing.TB, root string) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			t.Errorf("orphaned tmp file: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
