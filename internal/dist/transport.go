package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Conn is the coordinator's handle on one worker: an ordered message pipe
// in each direction plus process-level kill/reap. Recv's channel closes
// when the worker side is gone (exited, killed, or its pipe broke).
type Conn interface {
	// Send delivers one coordinator→worker message. An error means the
	// worker is unreachable and must be treated as dead.
	Send(Message) error
	// Recv returns the worker→coordinator message stream.
	Recv() <-chan Message
	// Kill force-stops the worker. Idempotent; the only way to reclaim a
	// hung worker.
	Kill()
	// Wait blocks until the worker has fully stopped and releases its
	// resources. Call after Kill or after Recv closed.
	Wait() error
}

// Transport starts workers. The process transport spawns real subprocesses;
// the in-process transport (see local.go) runs the same worker loop in a
// goroutine with scripted faults, which is what the chaos dist mode drives.
type Transport interface {
	Start(ctx context.Context, id string) (Conn, error)
}

// ProcTransport launches each worker as a subprocess speaking the JSON-line
// protocol over stdin/stdout. Command builds the (unstarted) command for a
// worker id; the transport wires the pipes and forwards worker stderr to
// this process's stderr.
type ProcTransport struct {
	Command func(id string) (*exec.Cmd, error)
}

func (t *ProcTransport) Start(ctx context.Context, id string) (Conn, error) {
	cmd, err := t.Command(id)
	if err != nil {
		return nil, err
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s stdin: %w", id, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s stdout: %w", id, err)
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: starting worker %s: %w", id, err)
	}
	out := make(chan Message, 16)
	c := &procConn{cmd: cmd, stdin: stdin, out: out}
	go func() {
		// A malformed line or pipe error just ends the stream: the
		// coordinator sees the close and treats the worker as dead.
		_ = ReadMessages(stdout, out)
	}()
	return c, nil
}

// procConn is a Conn over a live subprocess.
type procConn struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   chan Message

	mu     sync.Mutex
	killed bool
	waited bool
	werr   error
}

func (c *procConn) Send(m Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return WriteMessage(c.stdin, m)
}

func (c *procConn) Recv() <-chan Message { return c.out }

func (c *procConn) Kill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return
	}
	c.killed = true
	_ = c.cmd.Process.Kill()
}

func (c *procConn) Wait() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.waited {
		return c.werr
	}
	c.waited = true
	c.stdin.Close()
	c.werr = c.cmd.Wait()
	return c.werr
}
