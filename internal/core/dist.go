package core

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"

	"parahash/internal/device"
	"parahash/internal/diskstore"
	"parahash/internal/fastq"
	"parahash/internal/graph"
	"parahash/internal/manifest"
	"parahash/internal/msp"
	"parahash/internal/store"
)

// This file is the core side of the distributed Step 2 path (internal/dist):
// the coordinator prepares a checkpointed build up to the end of Step 1,
// hands partition assignment to the dist coordinator, and folds fenced
// worker results back into the manifest through the same atomic
// verify-then-journal discipline the single-process build uses.

// DistStats aggregates the distributed-build fault-tolerance counters the
// coordinator accumulates over a run. All zero on a fault-free fleet.
type DistStats struct {
	// Workers is the configured fleet size; Spawned counts worker
	// processes actually started, replacements included.
	Workers int
	Spawned int
	// LeaseGrants counts partition-range leases granted (initial
	// assignments plus reassignments).
	LeaseGrants int64
	// LeaseExpiries counts leases that passed their heartbeat deadline and
	// were revoked.
	LeaseExpiries int64
	// Reassignments counts partitions handed to a different worker after
	// their original lease was revoked.
	Reassignments int64
	// FencedWrites counts results rejected because they carried a stale
	// fencing token — the zombie writes that would have corrupted a
	// re-assigned partition without fencing.
	FencedWrites int64
	// WorkerQuarantines counts workers removed from the fleet after
	// exhausting their failure budget.
	WorkerQuarantines int64
}

// DistPlan is a checkpointed build prepared for distributed Step 2: Step 1
// has run (or resumed) and every remaining partition is ready to be leased
// to worker processes. The plan owns the manifest; the dist coordinator is
// its only writer while the plan is open.
type DistPlan struct {
	cfg       Config
	ck        *checkpoint
	partStats []msp.PartitionStats
	step1     StepStats
}

// PrepareDistBuild validates the configuration, opens the checkpoint
// (fresh or resumed) and runs Step 1 exactly as a single-process build
// would, returning the plan for distributed Step 2. A checkpoint directory
// is required: the durable store is the only channel worker processes
// share.
func PrepareDistBuild(ctx context.Context, reads []fastq.Read, cfg Config) (*DistPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fastq.Validate(reads, cfg.K); err != nil {
		return nil, err
	}
	if cfg.Checkpoint.Dir == "" {
		return nil, fmt.Errorf("core: distributed build requires a checkpoint directory")
	}
	st, ck, err := openCheckpoint(cfg)
	if err != nil {
		return nil, err
	}
	partStats, step1Stats, err := buildStep1(ctx, cfg, st, ck, func(sinks partitionSinks) ([]msp.PartitionStats, []msp.FileInfo, StepStats, error) {
		return runStep1(ctx, reads, cfg, sinks)
	})
	if err != nil {
		return nil, canceledErr(ctx, fmt.Errorf("core: step 1 (MSP partitioning): %w", err))
	}
	// Any leases in a resumed manifest belong to a dead coordinator; this
	// process owns the whole partition space now. So do any journalled
	// spill runs: they were scanned by a dead single-process build, and
	// workers spill under their own fenced names instead of reading the
	// manifest, so nothing will ever merge them — drop the claims in the
	// same save, then remove the files.
	ck.man.ClearLeases()
	staleRuns := append([]manifest.SpillRun(nil), ck.man.SpillRuns...)
	ck.man.SpillRuns, ck.man.SpillDone = nil, nil
	ck.spillReady = map[int][]manifest.SpillRun{}
	if err := ck.man.Save(ck.path); err != nil {
		return nil, err
	}
	for _, rec := range staleRuns {
		_ = ck.ds.Remove(rec.Name) // best-effort; scrub sweeps leftovers
	}
	p := &DistPlan{cfg: cfg, ck: ck, partStats: partStats, step1: step1Stats}
	// So are any fenced orphans: results the dead fleet published but never
	// reported. Nothing will ever promote them (their tokens are below the
	// preserved high-water), so sweep them before leasing the space out.
	if _, err := p.SweepFenced(); err != nil {
		return nil, err
	}
	return p, nil
}

// Partitions returns the build's partition count.
func (p *DistPlan) Partitions() int { return p.cfg.NumPartitions }

// Pending returns the partitions whose Step 2 is not yet durably journalled,
// in index order.
func (p *DistPlan) Pending() []int {
	var out []int
	for i := 0; i < p.cfg.NumPartitions; i++ {
		if !p.ck.skipStep2(i) {
			out = append(out, i)
		}
	}
	return out
}

// KmersOf returns a partition's k-mer count (the Step 2 work weight).
func (p *DistPlan) KmersOf(i int) int64 { return p.partStats[i].Kmers }

// Manifest exposes the live manifest for lease journalling. The caller must
// persist every mutation with SaveManifest before acting on it.
func (p *DistPlan) Manifest() *manifest.Manifest { return p.ck.man }

// SaveManifest atomically persists the manifest.
func (p *DistPlan) SaveManifest() error { return p.ck.man.Save(p.ck.path) }

// FencedName returns the store name a worker holding the given fencing
// token must publish partition i's subgraph under. Workers never write the
// canonical name: only the coordinator promotes a verified fenced file, so
// a zombie worker's late write can at worst leave an orphan file that the
// final sweep removes.
func FencedName(i int, token int64) string {
	return fmt.Sprintf("%s.t%d", subgraphFile(i), token)
}

// PromoteFenced verifies a worker's fenced subgraph file, atomically
// renames it to the canonical partition name and journals the Step 2
// completion. distinct is the worker-reported pre-filter vertex count. The
// caller must have checked the token is current; PromoteFenced checks the
// bytes (parse + vertex count sanity) so a truncated or torn worker file
// can never enter the manifest.
func (p *DistPlan) PromoteFenced(i int, token int64, distinct int64) error {
	name := FencedName(i, token)
	r, err := p.ck.ds.Open(name)
	if err != nil {
		return fmt.Errorf("core: reading fenced subgraph %q: %w", name, err)
	}
	g, err := graph.ReadSubgraph(r)
	if err != nil {
		return fmt.Errorf("core: fenced subgraph %q is corrupt: %w", name, err)
	}
	if err := p.ck.ds.Rename(name, subgraphFile(i)); err != nil {
		return fmt.Errorf("core: promoting fenced subgraph %q: %w", name, err)
	}
	if err := p.ck.markStep2(i, g, distinct); err != nil {
		return err
	}
	if p.cfg.KeepSubgraphs {
		p.ck.subgraphs[i] = g
	}
	return nil
}

// DiscardFenced removes a stale worker result (a write fenced off by a
// newer token). Missing files are fine: the zombie may never have published.
func (p *DistPlan) DiscardFenced(i int, token int64) error {
	return p.ck.ds.Remove(FencedName(i, token))
}

// SweepFenced removes every fenced file still in the store — the orphans of
// revoked leases whose workers published after losing their claim: fenced
// subgraphs, and the fenced spill runs of workers killed mid-merge on an
// out-of-core partition. Returns the swept names. Run after the build
// completes so the checkpoint directory holds exactly the canonical
// artifacts.
func (p *DistPlan) SweepFenced() ([]string, error) {
	names, err := p.ck.ds.List()
	if err != nil {
		return nil, err
	}
	var swept []string
	for _, name := range names {
		var idx, run int
		var token int64
		fenced := false
		if n, _ := fmt.Sscanf(name, "subgraphs/%04d.t%d", &idx, &token); n == 2 {
			fenced = true
		} else if n, _ := fmt.Sscanf(name, "spill/%04d/run-%04d.t%d", &idx, &run, &token); n == 3 {
			fenced = true
		}
		if !fenced {
			continue
		}
		if err := p.ck.ds.Remove(name); err != nil {
			return swept, err
		}
		swept = append(swept, name)
	}
	return swept, nil
}

// Done reports whether every partition's Step 2 completion is journalled.
func (p *DistPlan) Done() bool {
	for i := 0; i < p.cfg.NumPartitions; i++ {
		if p.ck.man.Step2For(i) == nil {
			return false
		}
	}
	return true
}

// Finish assembles the run result after every partition is journalled,
// folding the coordinator's distributed-governance counters into the
// stats. With KeepSubgraphs the canonical subgraph files are re-read and
// merged — the same artifacts a resume would trust.
func (p *DistPlan) Finish(dist DistStats) (*Result, error) {
	if !p.Done() {
		return nil, fmt.Errorf("core: distributed build incomplete: %d of %d partitions journalled",
			len(p.ck.man.Step2), p.cfg.NumPartitions)
	}
	res := &Result{}
	res.Stats.Step1 = p.step1
	res.Stats.Step2 = StepStats{Partitions: p.cfg.NumPartitions}
	res.Stats.TotalSeconds = p.step1.Seconds
	res.Stats.Superkmers = msp.SummarizeStats(p.partStats)
	res.Stats.TotalKmers = res.Stats.Superkmers.TotalKmers
	for _, rec := range p.ck.man.Step2 {
		res.Stats.DistinctVertices += rec.Distinct
	}
	res.Stats.DuplicateVertices = res.Stats.TotalKmers - res.Stats.DistinctVertices
	res.Stats.ResumedPartitions = p.ck.resumed
	res.Stats.RebuiltPartitions = p.ck.rebuilt()
	res.Stats.Dist = &dist
	if p.cfg.KeepSubgraphs {
		subgraphs := make([]*graph.Subgraph, p.cfg.NumPartitions)
		for i := 0; i < p.cfg.NumPartitions; i++ {
			if g, ok := p.ck.subgraphs[i]; ok {
				subgraphs[i] = g
				continue
			}
			rec := p.ck.man.Step2For(i)
			g, ok := verifySubgraphFile(p.ck.ds, rec)
			if !ok {
				return nil, fmt.Errorf("core: journalled subgraph %d failed verification at finish", i)
			}
			subgraphs[i] = g
		}
		merged, err := graph.Merge(p.cfg.K, subgraphs...)
		if err != nil {
			return nil, err
		}
		res.Graph = merged
		res.Subgraphs = subgraphs
	}
	return res, nil
}

// DistOutput is a worker's report for one constructed partition: the fenced
// store name it published plus the counts the coordinator journals after
// promotion.
type DistOutput struct {
	Name     string
	Bytes    int64
	Vertices int64
	Edges    int64
	Distinct int64
	Kmers    int64
}

// ConstructDistPartition is the worker side of distributed Step 2: decode
// one superkmer partition from the shared checkpoint store, construct its
// subgraph on this process's first configured processor, apply the output
// filter, and publish the result under the fenced name outName (never the
// canonical one — promotion is the coordinator's job). The store's atomic
// publish means a worker killed at any point leaves either nothing or the
// complete fenced file.
func ConstructDistPartition(ctx context.Context, cfg Config, index int, outName string) (DistOutput, error) {
	if err := cfg.Validate(); err != nil {
		return DistOutput{}, err
	}
	if cfg.Checkpoint.Dir == "" {
		return DistOutput{}, fmt.Errorf("core: distributed worker requires a checkpoint directory")
	}
	ds, err := diskstore.Open(filepath.Join(cfg.Checkpoint.Dir, "data"))
	if err != nil {
		return DistOutput{}, fmt.Errorf("core: opening checkpoint store: %w", err)
	}
	var st store.PartitionStore = ds
	st = wrapBuildStore(cfg, st)
	sks, _, err := loadPartition(st, superkmerFile(index))
	if err != nil {
		return DistOutput{}, fmt.Errorf("core: loading partition %d: %w", index, err)
	}
	procs := processors(cfg)
	if len(procs) == 0 {
		return DistOutput{}, fmt.Errorf("core: no processors configured")
	}
	var kmers int64
	for i := range sks {
		kmers += int64(sks[i].NumKmers(cfg.K))
	}
	var out device.Step2Output
	spilled := false
	if predicted, ok := cfg.predictedTableBytes(kmers); ok {
		if budget, auto := cfg.spillBudgetFor(predicted); budget > 0 {
			if auto {
				cfg.logf("core: worker: partition %d predicted %d table bytes, over the %d-byte memory budget; auto-routing out-of-core",
					index, predicted, cfg.MemoryBudgetBytes)
			}
			out, err = distSpillStep2(ctx, cfg, index, outName, sks, st, budget)
			if err != nil {
				return DistOutput{}, fmt.Errorf("core: constructing partition %d out-of-core: %w", index, err)
			}
			spilled = true
		}
	}
	if !spilled {
		out, err = step2Construct(ctx, procs[0], sks, cfg)
		if err != nil {
			return DistOutput{}, fmt.Errorf("core: constructing partition %d: %w", index, err)
		}
	}
	toWrite := out.Graph
	if cfg.OutputFilterMin > 1 {
		filtered := &graph.Subgraph{K: toWrite.K,
			Vertices: append([]graph.Vertex(nil), toWrite.Vertices...)}
		filtered.FilterByMultiplicity(cfg.OutputFilterMin)
		toWrite = filtered
	}
	sink, err := st.Create(outName)
	if err != nil {
		return DistOutput{}, fmt.Errorf("core: creating fenced subgraph %q: %w", outName, err)
	}
	if err := toWrite.Write(sink); err != nil {
		sink.Close()
		return DistOutput{}, fmt.Errorf("core: writing fenced subgraph %q: %w", outName, err)
	}
	if err := sink.Close(); err != nil {
		return DistOutput{}, err
	}
	return DistOutput{
		Name:     outName,
		Bytes:    graph.SerializedSize(toWrite.NumVertices()),
		Vertices: int64(toWrite.NumVertices()),
		Edges:    int64(toWrite.NumEdges()),
		Distinct: out.Distinct,
		Kmers:    out.Kmers,
	}, nil
}

// distSpillStep2 is the worker side of an out-of-core partition: spill
// budget-bounded sorted runs, merge them into the subgraph, then remove the
// runs — the merged graph is in memory and the fenced subgraph publish below
// is the only artifact the coordinator will ever trust. Workers never touch
// the manifest, so runs are fenced by name instead of journalled: the
// worker's fencing token (parsed from its assigned output name) suffixes
// every run, keeping a zombie holding a revoked lease out of the current
// holder's in-flight files. A worker killed at any point leaves only fenced
// orphans, which SweepFenced removes.
func distSpillStep2(ctx context.Context, cfg Config, index int, outName string, sks []msp.Superkmer, st store.PartitionStore, budget int64) (device.Step2Output, error) {
	threads := cfg.CPUThreads
	if threads < 1 {
		threads = 1
	}
	runSuffix := ""
	var subIdx int
	var token int64
	if n, _ := fmt.Sscanf(outName, "subgraphs/%04d.t%d", &subIdx, &token); n == 2 {
		runSuffix = fmt.Sprintf(".t%d", token)
	}
	ecfg := device.ExternalConfig{
		K:           cfg.K,
		BufferBytes: budget,
		SortWorkers: threads,
		Store:       st,
		RunName:     func(run int) string { return spillRunFile(index, run) + runSuffix },
		Cal:         cfg.Calibration,
		Threads:     threads,
	}
	out, _, _, err := device.ExternalStep2(ctx, sks, ecfg)
	if err != nil {
		return device.Step2Output{}, err
	}
	// Best-effort cleanup of this attempt's runs, merge intermediates
	// included (they continue the ordinal sequence under the same fenced
	// suffix); failures leave orphans for SweepFenced.
	if names, err := st.List(); err == nil {
		prefix := fmt.Sprintf("spill/%04d/", index)
		for _, name := range names {
			if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, runSuffix) {
				_ = st.Remove(name)
			}
		}
	}
	return out, nil
}
