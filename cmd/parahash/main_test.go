package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parahash"
)

func TestRunProfile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.dbg")
	var buf bytes.Buffer
	err := run([]string{"-profile", "tiny", "-partitions", "8", "-threads", "4",
		"-out", out, "-gpus", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"distinct vertices", "step 1", "step 2", "workload", "graph written"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := parahash.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Error("written graph is empty")
	}
}

func TestRunFileInput(t *testing.T) {
	dir := t.TempDir()
	fastqPath := filepath.Join(dir, "in.fastq")
	d, err := parahash.GenerateDataset(parahash.TinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(fastqPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := parahash.WriteFASTQ(f, d.Reads); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{"-in", fastqPath, "-partitions", "8", "-threads", "4",
		"-filter", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "filtered") {
		t.Errorf("filter output missing:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                   // no input
		{"-profile", "nope"}, // bad profile
		{"-profile", "tiny", "-medium", "floppy"},
		{"-profile", "tiny", "-in", "x"}, // mutually exclusive
		{"-in", "/does/not/exist.fastq"},
		{"-profile", "tiny", "-k", "1"}, // bad config
	}
	for i, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}

func TestRunHostCalibration(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-profile", "tiny", "-partitions", "8", "-threads", "2",
		"-host-calibration"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "virtual time") {
		t.Errorf("output:\n%s", buf.String())
	}
}
