package graph

import (
	"sort"
	"sync"
)

// sortParallelMin is the vertex count below which SortParallel falls back to
// the sequential sort: goroutine fan-out costs more than it saves on small
// subgraphs.
const sortParallelMin = 1 << 13

// SortParallel orders the vertices canonically using up to workers
// goroutines: the slice is cut into per-worker runs, each run sorted
// concurrently, and the runs merged pairwise. Vertex k-mers are unique
// within a subgraph, so the result is exactly the sequential Sort's.
func (g *Subgraph) SortParallel(workers int) {
	n := len(g.Vertices)
	if workers <= 1 || n < sortParallelMin {
		g.Sort()
		return
	}
	// Keep runs at least ~1k vertices so per-goroutine work dwarfs the
	// fan-out cost; n >= sortParallelMin keeps this at least 8.
	if workers > n/1024 {
		workers = n / 1024
	}

	// Cut into runs of near-equal length and sort each concurrently.
	cur, other := g.Vertices, make([]Vertex, n)
	runs := make([][]Vertex, 0, workers)
	for i := 0; i < workers; i++ {
		lo, hi := i*n/workers, (i+1)*n/workers
		if lo < hi {
			runs = append(runs, cur[lo:hi:hi])
		}
	}
	var wg sync.WaitGroup
	for _, run := range runs {
		wg.Add(1)
		go func(run []Vertex) {
			defer wg.Done()
			sort.Slice(run, func(i, j int) bool { return run[i].Kmer.Less(run[j].Kmer) })
		}(run)
	}
	wg.Wait()

	// Merge adjacent run pairs concurrently, ping-ponging between the two
	// buffers, until a single fully sorted run remains.
	for len(runs) > 1 {
		next := make([][]Vertex, 0, (len(runs)+1)/2)
		off := 0
		var mg sync.WaitGroup
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				dst := other[off : off+len(runs[i]) : off+len(runs[i])]
				copy(dst, runs[i])
				next = append(next, dst)
				off += len(runs[i])
				continue
			}
			a, b := runs[i], runs[i+1]
			dst := other[off : off+len(a)+len(b) : off+len(a)+len(b)]
			next = append(next, dst)
			off += len(a) + len(b)
			mg.Add(1)
			go func(dst, a, b []Vertex) {
				defer mg.Done()
				mergeVertices(dst, a, b)
			}(dst, a, b)
		}
		mg.Wait()
		runs = next
		cur, other = other, cur
	}
	g.Vertices = runs[0]
}

// mergeVertices merges two sorted runs into dst (len(dst) = len(a)+len(b)).
func mergeVertices(dst, a, b []Vertex) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Kmer.Less(b[j].Kmer) {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}
