package graph

import "sort"

// AssemblyMetrics summarises a contig set with the standard de novo
// assembly statistics (the ones GAGE — the paper's dataset source —
// evaluates assemblers with).
type AssemblyMetrics struct {
	// Contigs is the number of sequences.
	Contigs int
	// TotalBases sums contig lengths.
	TotalBases int
	// Longest is the maximum contig length.
	Longest int
	// N50 is the length L such that contigs of length >= L cover half the
	// total assembly.
	N50 int
	// NG50 is N50 computed against a reference genome size instead of the
	// assembly size (0 when no genome size was given).
	NG50 int
	// MeanLength is the average contig length.
	MeanLength float64
}

// ComputeAssemblyMetrics computes the metrics for a contig set; genomeSize
// may be 0 when unknown (NG50 is then omitted).
func ComputeAssemblyMetrics(contigs []string, genomeSize int) AssemblyMetrics {
	var m AssemblyMetrics
	m.Contigs = len(contigs)
	if len(contigs) == 0 {
		return m
	}
	lengths := make([]int, len(contigs))
	for i, c := range contigs {
		lengths[i] = len(c)
		m.TotalBases += len(c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	m.Longest = lengths[0]
	m.MeanLength = float64(m.TotalBases) / float64(len(contigs))

	nx := func(target int) int {
		if target <= 0 {
			return 0
		}
		acc := 0
		for _, l := range lengths {
			acc += l
			if 2*acc >= target {
				return l
			}
		}
		return 0
	}
	m.N50 = nx(m.TotalBases)
	if genomeSize > 0 {
		m.NG50 = nx(genomeSize)
	}
	return m
}

// ConnectedComponents counts the weakly connected components of the
// compacted graph (unitigs joined by links) and returns the size in
// unitigs of the largest one. Fragmented assemblies show many components;
// a clean single-chromosome assembly shows one.
func (cg *CompactedGraph) ConnectedComponents() (count, largest int) {
	if len(cg.Unitigs) == 0 {
		return 0, 0
	}
	parent := make([]int, len(cg.Unitigs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, l := range cg.Links {
		a, b := find(l.From), find(l.To)
		if a != b {
			parent[a] = b
		}
	}
	sizes := make(map[int]int)
	for i := range parent {
		sizes[find(i)]++
	}
	for _, n := range sizes {
		if n > largest {
			largest = n
		}
	}
	return len(sizes), largest
}
