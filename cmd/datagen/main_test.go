package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parahash"
)

func TestDatagenProfileToStdout(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-profile", "tiny"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	reads, err := parahash.ParseReads(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != parahash.TinyProfile().NumReads {
		t.Errorf("got %d reads", len(reads))
	}
	if !strings.Contains(errw.String(), "coverage") {
		t.Errorf("stderr: %s", errw.String())
	}
}

func TestDatagenCustomWithGenome(t *testing.T) {
	dir := t.TempDir()
	fq := filepath.Join(dir, "x.fastq")
	fa := filepath.Join(dir, "x.fasta")
	var out, errw bytes.Buffer
	err := run([]string{"-genome-size", "500", "-read-len", "60", "-reads", "40",
		"-lambda", "0.5", "-out", fq, "-genome", fa}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(fq)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reads, err := parahash.ParseReads(f)
	if err != nil || len(reads) != 40 {
		t.Fatalf("fastq: %v, %d reads", err, len(reads))
	}
	fa2, err := os.Open(fa)
	if err != nil {
		t.Fatal(err)
	}
	defer fa2.Close()
	genome, err := parahash.ParseReads(fa2)
	if err != nil || len(genome) != 1 || len(genome[0].Bases) != 500 {
		t.Fatalf("genome fasta: %v", err)
	}
}

func TestDatagenScale(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-profile", "tiny", "-scale", "0.5"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	reads, err := parahash.ParseReads(&out)
	if err != nil {
		t.Fatal(err)
	}
	if want := parahash.TinyProfile().NumReads / 2; len(reads) != want {
		t.Errorf("scaled reads = %d, want %d", len(reads), want)
	}
}

func TestDatagenErrors(t *testing.T) {
	cases := [][]string{
		{},                      // neither profile nor custom
		{"-profile", "bogus"},   // unknown profile
		{"-genome-size", "100"}, // missing -reads
		{"-genome-size", "10", "-reads", "5", "-read-len", "60"}, // read > genome
	}
	for i, args := range cases {
		var out, errw bytes.Buffer
		if err := run(args, &out, &errw); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}
