package core

import (
	"bytes"
	"testing"

	"parahash/internal/graph"
	"parahash/internal/hashtable"
)

// TestBackendsByteIdentical is the interchangeability acceptance test: every
// hash-table backend must produce a byte-identical serialized graph on the
// same input and partitioning. The table only accumulates per-vertex counts;
// determinism comes from the post-construction sort, so any backend that
// leaked iteration order or dropped/merged counts differently would diverge
// here at the byte level.
func TestBackendsByteIdentical(t *testing.T) {
	reads := tinyReads(t)
	want := graph.BuildNaive(reads, 27)

	var reference []byte
	for _, b := range hashtable.Backends() {
		cfg := tinyConfig()
		cfg.TableBackend = string(b)
		cfg.NumGPUs = 1 // exercise the GPU Step 2 kernel on every backend too
		res, err := Build(reads, cfg)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if !res.Graph.Equal(want) {
			t.Fatalf("%s: graph differs from naive reference", b)
		}
		var buf bytes.Buffer
		if err := res.Graph.Write(&buf); err != nil {
			t.Fatalf("%s: serializing: %v", b, err)
		}
		if reference == nil {
			reference = buf.Bytes()
			continue
		}
		if !bytes.Equal(reference, buf.Bytes()) {
			t.Fatalf("%s: serialized graph differs from %s's bytes (len %d vs %d)",
				b, hashtable.Backends()[0], buf.Len(), len(reference))
		}
	}
}

// TestBackendValidation pins Config.Validate's handling of the TableBackend
// knob: listed names and the empty default pass, junk is rejected.
func TestBackendValidation(t *testing.T) {
	for _, name := range []string{"", "statetransfer", "lockfree", "sharded"} {
		cfg := tinyConfig()
		cfg.TableBackend = name
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate with TableBackend=%q: %v", name, err)
		}
	}
	cfg := tinyConfig()
	cfg.TableBackend = "robinhood"
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted unknown TableBackend")
	}
}

// TestResizeLoopKeepsCounters is the regression test for the Step 2 resize
// loop dropping hash-work counters: a deliberately under-sized table (tiny λ)
// forces ErrTableFull rebuilds, and the failed attempts' inserts/probes must
// still land in the run stats. Before the fix the counters only reflected
// the final successful attempt, so resizing partitions under-reported work.
func TestResizeLoopKeepsCounters(t *testing.T) {
	reads := tinyReads(t)
	for _, backend := range hashtable.Backends() {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			// Control: properly pre-sized build, no resizes expected.
			cfg := tinyConfig()
			cfg.TableBackend = string(backend)
			sized, err := Build(reads, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Same input with λ small enough that Property 1 under-sizes every
			// partition and the resize fallback must engage.
			cfg = tinyConfig()
			cfg.TableBackend = string(backend)
			cfg.Lambda = 0.01
			resized, err := Build(reads, cfg)
			if err != nil {
				t.Fatal(err)
			}

			if !resized.Graph.Equal(sized.Graph) {
				t.Fatal("resized build produced a different graph")
			}
			// The final successful attempts alone perform exactly the sized
			// build's work; wasted attempts must push the totals strictly past
			// it. (Inserts is the load-bearing counter: one per distinct key
			// per attempt.)
			s, r := sized.Stats.Hash, resized.Stats.Hash
			if r.Inserts <= s.Inserts {
				t.Errorf("resize-loop Inserts = %d, want > %d (wasted attempts must be counted)",
					r.Inserts, s.Inserts)
			}
			if r.Probes <= s.Probes {
				t.Errorf("resize-loop Probes = %d, want > %d", r.Probes, s.Probes)
			}
		})
	}
}
