// Package faultinject provides deterministic, scripted fault plans for
// exercising the resilient pipeline: transient and persistent IO faults,
// served-byte corruption, disk-full and slow-IO faults (via the store
// hooks of iosim.Store or this package's Store wrapper), processor faults
// — a device.Processor that drops out mid-run, fails or hangs a scripted
// set of Step2 calls, modelling a GPU dying or wedging under load — and
// plan-scoped stall/cancel points fired at named pipeline sites.
//
// Plans are deterministic: the same plan against the same input produces
// the same fault sequence, so degraded-mode builds remain reproducible and
// their recovered results can be compared byte-for-byte against fault-free
// runs.
//
// # Process-global vs plan-scoped knobs
//
// Two fault knobs are deliberately process-global: the CrashEnv crash
// points and the StallEnv stall points, both armed through environment
// variables with process-wide hit counters (reset via ResetStallCounts).
// They have to be: their consumers are cross-process e2e tests that arm a
// point in a parent process and observe it in a re-exec'd child, so the
// arming must survive an exec boundary, and a crash point by definition
// destroys the process — scoping it any finer is meaningless. Everything
// else — store faults, processor faults, and the StallPoints/CancelPoints
// below — is scoped to one Plan application with fresh counters, so
// concurrent in-process chaos runs never interfere with each other.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"parahash/internal/device"
	"parahash/internal/fastq"
	"parahash/internal/msp"
)

// CrashEnv is the environment variable that arms a crash point for
// crash-resume testing. Its value is "<point>" or "<point>:<n>": the n-th
// (1-based, default 1) call to MaybeCrash with that point name kills the
// process abruptly — SIGKILL-style, with no deferred cleanup — so the
// durable store and manifest are exercised exactly as a power loss would.
//
//	PARAHASH_CRASH_POINT=step2.partition:3 parahash -profile tiny -checkpoint-dir ck
const CrashEnv = "PARAHASH_CRASH_POINT"

var (
	crashMu     sync.Mutex
	crashCounts = map[string]int{}
)

// MaybeCrash kills the process if the CrashEnv variable arms the named
// crash point and its hit count has been reached. With the variable unset
// (every production run) it is a cheap no-op. The kill is delivered as an
// uncatchable signal where the platform supports it, so no buffered state
// is flushed — only durably published files survive, which is the point.
func MaybeCrash(point string) {
	spec := os.Getenv(CrashEnv)
	if spec == "" {
		return
	}
	name, hit := spec, 1
	if i := strings.LastIndexByte(spec, ':'); i >= 0 {
		if n, err := strconv.Atoi(spec[i+1:]); err == nil && n > 0 {
			name, hit = spec[:i], n
		}
	}
	if name != point {
		return
	}
	crashMu.Lock()
	crashCounts[point]++
	fire := crashCounts[point] == hit
	crashMu.Unlock()
	if !fire {
		return
	}
	fmt.Fprintf(os.Stderr, "faultinject: crash point %q hit %d — killing process\n", point, hit)
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		_ = p.Kill() // SIGKILL on unix: no deferred functions, no flushes
	}
	os.Exit(137) // unreachable on unix; abrupt-exit fallback elsewhere
}

// StallEnv is the environment variable that arms a stall point for
// SIGINT/cancellation testing. Its value is "<point>" or "<point>:<n>": the
// n-th (1-based, default 1) call to MaybeStall with that point name blocks
// until the caller's context is canceled. Unlike CrashEnv's abrupt kill,
// this models a build that hangs mid-flight, so graceful-shutdown paths can
// be exercised deterministically from an e2e test.
//
//	PARAHASH_STALL_POINT=step2.partition:3 parahash -profile tiny -checkpoint-dir ck
const StallEnv = "PARAHASH_STALL_POINT"

var (
	stallMu     sync.Mutex
	stallCounts = map[string]int{}
)

// ResetStallCounts clears every env-armed stall point's hit counter.
// These counters are process-global on purpose (see the package comment):
// StallEnv arming crosses exec boundaries for e2e tests, so sequential
// in-process tests that arm the same point must reset between runs.
// Concurrent tests should use plan-scoped StallPoints instead, which
// need no reset.
func ResetStallCounts() {
	stallMu.Lock()
	stallCounts = map[string]int{}
	stallMu.Unlock()
}

// MaybeStall fires the named stall/cancel point if armed. Plan-scoped
// points (carried on ctx by Plan.ApplyPoints) are consulted first with
// their own per-plan counters; the process-global StallEnv arming is the
// fallback. A fired stall blocks until ctx is canceled and returns ctx's
// error; a fired cancel point cancels the plan's build context itself
// (with ErrPointCanceled as the cause) and then returns the same way.
// With nothing armed (every production run) it is a cheap no-op returning
// nil.
func MaybeStall(ctx context.Context, point string) error {
	if pts := pointsFrom(ctx); pts != nil {
		switch pts.fire(point) {
		case actStall:
			fmt.Fprintf(os.Stderr, "faultinject: plan stall point %q hit — blocking until canceled\n", point)
			<-ctx.Done()
			return ctx.Err()
		case actCancel:
			fmt.Fprintf(os.Stderr, "faultinject: plan cancel point %q hit — canceling build\n", point)
			pts.cancel(fmt.Errorf("%w: %s", ErrPointCanceled, point))
			<-ctx.Done()
			return ctx.Err()
		}
	}
	spec := os.Getenv(StallEnv)
	if spec == "" {
		return nil
	}
	name, hit := spec, 1
	if i := strings.LastIndexByte(spec, ':'); i >= 0 {
		if n, err := strconv.Atoi(spec[i+1:]); err == nil && n > 0 {
			name, hit = spec[:i], n
		}
	}
	if name != point {
		return nil
	}
	stallMu.Lock()
	stallCounts[point]++
	fire := stallCounts[point] == hit
	stallMu.Unlock()
	if !fire {
		return nil
	}
	fmt.Fprintf(os.Stderr, "faultinject: stall point %q hit %d — blocking until canceled\n", point, hit)
	<-ctx.Done()
	return ctx.Err()
}

// ErrInjected is the default error carried by scripted faults.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrPointCanceled is the cancellation cause installed when a plan-scoped
// cancel point fires: the scripted analogue of an operator interrupt (or,
// for checkpointed builds, of a crash at the same site — the durable state
// a resume sees is identical, since only published files and journalled
// manifest entries survive either way; the SIGKILL abruptness itself is
// covered by the process-global CrashEnv e2e tests).
var ErrPointCanceled = errors.New("faultinject: canceled at armed point")

// PointFault arms one named pipeline point (e.g. "step2.partition",
// "step1.published" — the same vocabulary as CrashEnv/StallEnv) with a
// plan-scoped hit counter.
type PointFault struct {
	// Point is the pipeline site name.
	Point string
	// Hit is the 1-based call count at which the point fires (0 means 1).
	Hit int
}

// pointAction is what a fired point does.
type pointAction int

const (
	actNone   pointAction = iota
	actStall              // block until the build context is canceled
	actCancel             // cancel the build context, then block
)

// points carries one plan application's armed stall/cancel points with
// counters scoped to that application — concurrent plans never share hit
// counts the way the process-global env arming does.
type points struct {
	mu     sync.Mutex
	counts map[string]int
	stall  map[string]map[int]bool // point -> firing hit numbers
	cancel context.CancelCauseFunc
	cancl  map[string]map[int]bool
}

// fire advances the point's counter and reports the armed action, if any.
// A hit number fires at most once (arming the same hit as both stall and
// cancel resolves to cancel).
func (p *points) fire(point string) pointAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts[point]++
	n := p.counts[point]
	if p.cancl[point][n] {
		return actCancel
	}
	if p.stall[point][n] {
		return actStall
	}
	return actNone
}

type pointsCtxKey struct{}

// pointsFrom extracts the plan-scoped points from a context, or nil.
func pointsFrom(ctx context.Context) *points {
	p, _ := ctx.Value(pointsCtxKey{}).(*points)
	return p
}

// ApplyPoints returns a context carrying the plan's StallPoints and
// CancelPoints with fresh, plan-scoped hit counters. cancel is the build
// context's CancelCauseFunc, invoked with ErrPointCanceled when a cancel
// point fires; it may be nil if the plan arms no cancel points. Plans
// without points return ctx unchanged.
func (p Plan) ApplyPoints(ctx context.Context, cancel context.CancelCauseFunc) context.Context {
	if len(p.StallPoints) == 0 && len(p.CancelPoints) == 0 {
		return ctx
	}
	pts := &points{
		counts: make(map[string]int),
		stall:  make(map[string]map[int]bool),
		cancl:  make(map[string]map[int]bool),
		cancel: cancel,
	}
	if pts.cancel == nil {
		pts.cancel = func(error) {}
	}
	arm := func(m map[string]map[int]bool, f PointFault) {
		hit := f.Hit
		if hit < 1 {
			hit = 1
		}
		if m[f.Point] == nil {
			m[f.Point] = make(map[int]bool)
		}
		m[f.Point][hit] = true
	}
	for _, f := range p.StallPoints {
		arm(pts.stall, f)
	}
	for _, f := range p.CancelPoints {
		arm(pts.cancl, f)
	}
	return context.WithValue(ctx, pointsCtxKey{}, pts)
}

// ErrProcessorDead is returned by every call to a processor that has
// dropped out.
var ErrProcessorDead = errors.New("faultinject: processor dropped out")

// StoreFault scripts one file's IO fault.
type StoreFault struct {
	// File is the store file name the fault attaches to.
	File string
	// Times is how many accesses fail (or serve corrupt bytes) before the
	// file recovers; negative means every access.
	Times int
	// Err is the injected error; nil selects ErrInjected. Ignored for
	// corruption faults.
	Err error
	// Corrupt, on a read fault, serves a bit-flipped copy instead of
	// failing the open — the integrity footer must catch it downstream.
	Corrupt bool
}

// ProcessorFault scripts one processor's misbehaviour.
type ProcessorFault struct {
	// Proc indexes the processor in the pipeline's device slice (0 is the
	// CPU when enabled, then the GPUs).
	Proc int
	// DieAfter kills the processor permanently after this many successful
	// Step1/Step2 calls: every later call returns ErrProcessorDead.
	// 0 (the zero value) disables the drop-out; use DeadOnArrival for a
	// processor that never works.
	DieAfter int
	// DeadOnArrival makes every call fail with ErrProcessorDead from the
	// start.
	DeadOnArrival bool
	// FailStep2Calls lists 0-based Step2 call indices that fail once each
	// with Err, modelling sporadic per-partition kernel failures.
	FailStep2Calls []int
	// HangStep2Calls lists 0-based Step2 call indices that hang — blocking
	// on the call's context until it is canceled — modelling a wedged
	// kernel the pipeline watchdog must abandon. Each listed call hangs
	// once.
	HangStep2Calls []int
	// Err overrides the injected error for FailStep2Calls; nil selects
	// ErrInjected.
	Err error
}

// SlowFault scripts latency on one file's IO: each of the next Times
// accesses (negative: every access) sleeps Delay wall-clock before being
// served, modelling a device or filesystem that has gone slow without
// failing outright.
type SlowFault struct {
	File  string
	Times int
	Delay time.Duration
}

// Plan is a complete scripted fault scenario.
type Plan struct {
	// ReadFaults and WriteFaults script store-level IO faults.
	ReadFaults, WriteFaults []StoreFault
	// SlowReads and SlowWrites script store-level latency faults. They are
	// honoured only by fault sinks that support latency (this package's
	// Store wrapper); other sinks ignore them.
	SlowReads, SlowWrites []SlowFault
	// CapacityBytes, when positive, models a nearly full device: once the
	// store has accepted this many bytes, further writes fail with
	// store.ErrDiskFull. Honoured only by capacity-aware sinks (this
	// package's Store wrapper).
	CapacityBytes int64
	// ProcessorFaults script compute-device faults.
	ProcessorFaults []ProcessorFault
	// StallPoints and CancelPoints arm named pipeline points with
	// plan-scoped counters (see ApplyPoints): a stall point blocks the
	// build at the site until its context is canceled; a cancel point
	// cancels the build context itself, modelling mid-build cancellation —
	// or, on a checkpointed build, a crash at that site.
	StallPoints, CancelPoints []PointFault
}

// IOFaultSink is the store-side fault surface a Plan scripts against.
// Both iosim.Store and this package's Store wrapper implement it.
type IOFaultSink interface {
	FailReadsOn(name string, err error)
	FailReadsNTimes(name string, n int, err error)
	FailWritesOn(name string, err error)
	FailWritesNTimes(name string, n int, err error)
	CorruptReadsNTimes(name string, n int)
}

// slowSink is the optional latency-fault surface.
type slowSink interface {
	SlowReadsNTimes(name string, n int, d time.Duration)
	SlowWritesNTimes(name string, n int, d time.Duration)
}

// capacitySink is the optional disk-capacity surface.
type capacitySink interface {
	SetCapacityBytes(n int64)
}

// ApplyStore installs the plan's IO faults on a store's fault sink. Slow
// and capacity faults are applied only when the sink supports them.
func (p Plan) ApplyStore(s IOFaultSink) {
	for _, f := range p.ReadFaults {
		if f.Corrupt {
			s.CorruptReadsNTimes(f.File, f.Times)
			continue
		}
		if f.Times < 0 {
			s.FailReadsOn(f.File, errOf(f.Err))
		} else {
			s.FailReadsNTimes(f.File, f.Times, errOf(f.Err))
		}
	}
	for _, f := range p.WriteFaults {
		if f.Times < 0 {
			s.FailWritesOn(f.File, errOf(f.Err))
		} else {
			s.FailWritesNTimes(f.File, f.Times, errOf(f.Err))
		}
	}
	if sl, ok := s.(slowSink); ok {
		for _, f := range p.SlowReads {
			sl.SlowReadsNTimes(f.File, f.Times, f.Delay)
		}
		for _, f := range p.SlowWrites {
			sl.SlowWritesNTimes(f.File, f.Times, f.Delay)
		}
	}
	if cs, ok := s.(capacitySink); ok && p.CapacityBytes > 0 {
		cs.SetCapacityBytes(p.CapacityBytes)
	}
}

// WrapProcessors returns a copy of procs with the plan's processor faults
// wrapped around the scripted devices. Each call yields wrappers with fresh
// fault state, so a plan applied to both pipeline steps scripts each step
// independently.
func (p Plan) WrapProcessors(procs []device.Processor) []device.Processor {
	out := append([]device.Processor(nil), procs...)
	for _, f := range p.ProcessorFaults {
		if f.Proc < 0 || f.Proc >= len(out) {
			continue
		}
		out[f.Proc] = NewFlaky(out[f.Proc], f)
	}
	return out
}

func errOf(err error) error {
	if err == nil {
		return ErrInjected
	}
	return err
}

// Flaky wraps a device.Processor with scripted failures. It is safe for
// concurrent use, though the pipeline drives each processor from a single
// goroutine.
type Flaky struct {
	inner device.Processor
	err   error

	mu         sync.Mutex
	dieAfter   int // successful calls before drop-out; -1 = never
	successes  int
	step2Calls int
	failStep2  map[int]bool
	hangStep2  map[int]bool
}

var _ device.Processor = (*Flaky)(nil)

// NewFlaky builds the wrapper for one scripted processor fault.
func NewFlaky(p device.Processor, f ProcessorFault) *Flaky {
	fl := &Flaky{inner: p, err: errOf(f.Err), dieAfter: -1}
	if f.DeadOnArrival {
		fl.dieAfter = 0
	} else if f.DieAfter > 0 {
		fl.dieAfter = f.DieAfter
	}
	if len(f.FailStep2Calls) > 0 {
		fl.failStep2 = make(map[int]bool, len(f.FailStep2Calls))
		for _, c := range f.FailStep2Calls {
			fl.failStep2[c] = true
		}
	}
	if len(f.HangStep2Calls) > 0 {
		fl.hangStep2 = make(map[int]bool, len(f.HangStep2Calls))
		for _, c := range f.HangStep2Calls {
			fl.hangStep2[c] = true
		}
	}
	return fl
}

// Name implements device.Processor.
func (f *Flaky) Name() string { return f.inner.Name() }

// Kind implements device.Processor.
func (f *Flaky) Kind() device.Kind { return f.inner.Kind() }

// deadLocked reports whether the processor has dropped out.
func (f *Flaky) deadLocked() bool { return f.dieAfter >= 0 && f.successes >= f.dieAfter }

// Step1 implements device.Processor, honouring the drop-out script.
func (f *Flaky) Step1(ctx context.Context, reads []fastq.Read, k, p int) (device.Step1Output, error) {
	f.mu.Lock()
	if f.deadLocked() {
		f.mu.Unlock()
		return device.Step1Output{}, fmt.Errorf("%s step1: %w", f.inner.Name(), ErrProcessorDead)
	}
	f.mu.Unlock()
	out, err := f.inner.Step1(ctx, reads, k, p)
	if err == nil {
		f.mu.Lock()
		f.successes++
		f.mu.Unlock()
	}
	return out, err
}

// Step2 implements device.Processor, honouring the drop-out, per-call
// failure and hang scripts.
func (f *Flaky) Step2(ctx context.Context, sks []msp.Superkmer, k, tableSlots int) (device.Step2Output, error) {
	f.mu.Lock()
	call := f.step2Calls
	f.step2Calls++
	if f.deadLocked() {
		f.mu.Unlock()
		return device.Step2Output{}, fmt.Errorf("%s step2 (call %d): %w", f.inner.Name(), call, ErrProcessorDead)
	}
	if f.failStep2[call] {
		delete(f.failStep2, call)
		f.mu.Unlock()
		return device.Step2Output{}, fmt.Errorf("%s step2 (call %d): %w", f.inner.Name(), call, f.err)
	}
	if f.hangStep2[call] {
		delete(f.hangStep2, call)
		f.mu.Unlock()
		// A wedged kernel holds the attempt until the watchdog (or the run)
		// cancels the context; a cooperative hang keeps the test leak-free.
		<-ctx.Done()
		return device.Step2Output{}, fmt.Errorf("%s step2 (call %d): hang released: %w",
			f.inner.Name(), call, ctx.Err())
	}
	f.mu.Unlock()
	out, err := f.inner.Step2(ctx, sks, k, tableSlots)
	if err == nil {
		f.mu.Lock()
		f.successes++
		f.mu.Unlock()
	}
	return out, err
}
