package graph

import (
	"parahash/internal/dna"
)

// This file implements unitig compaction: collapsing maximal non-branching
// paths of the bi-directed De Bruijn graph into contig strings. The De
// Bruijn graph construction the paper benchmarks is the input to exactly
// this traversal in a full assembler, and the edge multiplicities ParaHash
// records (unlike plain k-mer counters, §II-B) are what make the traversal
// possible; the assembly example exercises it end to end.

// oriented identifies a vertex plus the strand in which the walk passes it.
type oriented struct {
	idx int
	fwd bool
}

// compacter holds walk state over a sorted subgraph.
type compacter struct {
	g       *Subgraph
	visited []bool
}

// rightEdges lists the bases extending the walk to the right of an oriented
// vertex: canonical right edges when forward, complemented left edges when
// reversed. Edges whose target vertex is not in the graph are ignored —
// after multiplicity filtering, counters may still reference removed error
// vertices, and following them would fragment every unitig.
func (c *compacter) rightEdges(o oriented) []dna.Base {
	v := c.g.Vertices[o.idx]
	var out []dna.Base
	for b := dna.Base(0); b < 4; b++ {
		var present bool
		if o.fwd {
			present = v.Count(Right, b) > 0
		} else {
			present = v.Count(Left, b.Complement()) > 0
		}
		if !present {
			continue
		}
		target := c.orientedKmer(o).AppendBase(b, c.g.K)
		if canon, _ := target.Canonical(c.g.K); c.indexOf(canon) >= 0 {
			out = append(out, b)
		}
	}
	return out
}

// leftEdges lists bases extending to the left, symmetric to rightEdges.
func (c *compacter) leftEdges(o oriented) []dna.Base {
	v := c.g.Vertices[o.idx]
	var out []dna.Base
	for b := dna.Base(0); b < 4; b++ {
		var present bool
		if o.fwd {
			present = v.Count(Left, b) > 0
		} else {
			present = v.Count(Right, b.Complement()) > 0
		}
		if !present {
			continue
		}
		target := c.orientedKmer(o).PrependBase(b, c.g.K)
		if canon, _ := target.Canonical(c.g.K); c.indexOf(canon) >= 0 {
			out = append(out, b)
		}
	}
	return out
}

// orientedKmer returns the k-mer as read in the walk direction.
func (c *compacter) orientedKmer(o oriented) dna.Kmer {
	km := c.g.Vertices[o.idx].Kmer
	if o.fwd {
		return km
	}
	return km.ReverseComplement(c.g.K)
}

// step follows the unique right edge of o, returning the successor and
// whether the step is unambiguous on both endpoints (out-degree 1 at o,
// in-degree 1 at the successor).
func (c *compacter) step(o oriented) (next oriented, base dna.Base, ok bool) {
	edges := c.rightEdges(o)
	if len(edges) != 1 {
		return oriented{}, 0, false
	}
	b := edges[0]
	raw := c.orientedKmer(o).AppendBase(b, c.g.K)
	canon, fwd := raw.Canonical(c.g.K)
	i := c.indexOf(canon)
	if i < 0 {
		return oriented{}, 0, false
	}
	succ := oriented{idx: i, fwd: fwd}
	if len(c.leftEdges(succ)) != 1 {
		return succ, b, false
	}
	return succ, b, true
}

func (c *compacter) indexOf(km dna.Kmer) int {
	lo, hi := 0, len(c.g.Vertices)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.g.Vertices[mid].Kmer.Less(km) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.g.Vertices) && c.g.Vertices[lo].Kmer == km {
		return lo
	}
	return -1
}

// Unitigs compacts the subgraph into maximal non-branching path strings.
// The subgraph must be sorted. Every vertex appears in exactly one unitig;
// a unitig of m vertices is a string of K+m-1 bases. Output order is
// deterministic (by starting vertex index).
func (g *Subgraph) Unitigs() []string {
	c := &compacter{g: g, visited: make([]bool, len(g.Vertices))}
	var unitigs []string
	for i := range g.Vertices {
		if c.visited[i] {
			continue
		}
		unitigs = append(unitigs, c.walkFrom(i))
	}
	return unitigs
}

// walkFrom builds the maximal unitig through vertex i: it first retreats
// left while steps are unambiguous, then emits bases walking right.
func (c *compacter) walkFrom(i int) string {
	seq, _ := c.walkPathFrom(i)
	return seq
}
