// Package bcalmlike reimplements the construction strategy of bcalm2
// (Chikhi et al., 2016), the memory-efficient single-machine baseline of
// Table III: minimizer-based partitioning to disk, then per-partition
// sequential sort-merge construction with additional IO passes for
// compaction and minimal-perfect-hash (MPHF) indexing of junction k-mers.
//
// The graph produced is identical to ParaHash's; what differs — and what
// the comparison measures — is the strategy's cost profile: very low memory
// (one partition at a time, no hash table pre-allocation) but an order of
// magnitude more time from sort-merge and the extra disk passes.
package bcalmlike

import (
	"fmt"
	"io"

	"parahash/internal/baseline/sortmerge"
	"parahash/internal/costmodel"
	"parahash/internal/dna"
	"parahash/internal/fastq"
	"parahash/internal/graph"
	"parahash/internal/iosim"
	"parahash/internal/msp"
)

// Config parameterises the baseline.
type Config struct {
	// K and P are the k-mer and minimizer lengths.
	K, P int
	// NumPartitions is the minimizer partition count (kept equal to
	// ParaHash's in comparisons, as in the paper's Table III note).
	NumPartitions int
	// Threads is the worker count (bcalm2 runs 20 in the paper).
	Threads int
	// Medium is the IO device for the partition passes.
	Medium costmodel.Medium
	// Cal supplies timing constants.
	Cal costmodel.Calibration
}

// Stats reports the baseline's virtual time and memory.
type Stats struct {
	// PartitionSeconds is the (single-pass) minimizer partitioning time.
	PartitionSeconds float64
	// SortMergeSeconds is the per-partition construction time.
	SortMergeSeconds float64
	// IOSeconds covers all disk passes, including the extra compaction /
	// MPHF passes bcalm2 performs.
	IOSeconds float64
	// Seconds is the total elapsed virtual time.
	Seconds float64
	// PeakMemoryBytes is the largest single-partition footprint.
	PeakMemoryBytes int64
	// Kmers and Distinct describe the constructed graph.
	Kmers, Distinct int64
}

// Build constructs the De Bruijn graph with the bcalm2-like strategy.
func Build(reads []fastq.Read, cfg Config) (*graph.Subgraph, Stats, error) {
	if cfg.K < 2 || cfg.K > dna.MaxK {
		return nil, Stats{}, fmt.Errorf("bcalmlike: k=%d out of range", cfg.K)
	}
	if cfg.P < 1 || cfg.P > cfg.K || cfg.P > dna.MaxP {
		return nil, Stats{}, fmt.Errorf("bcalmlike: p=%d out of range", cfg.P)
	}
	if cfg.NumPartitions < 1 {
		return nil, Stats{}, fmt.Errorf("bcalmlike: partitions=%d must be positive", cfg.NumPartitions)
	}
	if cfg.Threads < 1 {
		return nil, Stats{}, fmt.Errorf("bcalmlike: threads=%d must be positive", cfg.Threads)
	}
	store := iosim.NewStore(cfg.Medium)

	// Pass 1: minimizer partitioning (sequential scan; bcalm2's
	// partitioning is not the bottleneck so a single charged pass
	// suffices).
	writer, err := msp.NewPartitionWriter(cfg.K, cfg.NumPartitions, func(i int) (io.WriteCloser, error) {
		return store.Create(fmt.Sprintf("part/%04d", i))
	})
	if err != nil {
		return nil, Stats{}, err
	}
	sc := msp.Scanner{K: cfg.K, P: cfg.P}
	var scratch []msp.Superkmer
	var bases int64
	for _, rd := range reads {
		bases += int64(len(rd.Bases))
		scratch = sc.Superkmers(scratch[:0], rd.Bases)
		for _, sk := range scratch {
			if err := writer.WriteSuperkmer(sk); err != nil {
				writer.Close()
				return nil, Stats{}, err
			}
		}
	}
	if err := writer.Close(); err != nil {
		return nil, Stats{}, err
	}
	pstats := writer.Stats()

	var st Stats
	st.PartitionSeconds = cfg.Cal.CPUStep1Seconds(bases, cfg.Threads) /
		cfg.Cal.BcalmParallelEfficiency

	// Pass 2: per-partition sort-merge construction.
	subs := make([]*graph.Subgraph, cfg.NumPartitions)
	var peak int64
	for i := 0; i < cfg.NumPartitions; i++ {
		sks, err := readPartition(store, fmt.Sprintf("part/%04d", i))
		if err != nil {
			return nil, Stats{}, err
		}
		sub, smStats, err := sortmerge.BuildSubgraph(sks, cfg.K, cfg.Threads, cfg.Cal)
		if err != nil {
			return nil, Stats{}, err
		}
		subs[i] = sub
		st.Kmers += smStats.Pairs
		st.Distinct += smStats.Distinct
		// Sort-merge over sorted runs costs with reduced parallel
		// efficiency (bcalm2's compaction serialises).
		st.SortMergeSeconds += smStats.Seconds / cfg.Cal.BcalmParallelEfficiency
		if resident := pstats[i].EncodedBytes + smStats.Pairs*24; resident > peak {
			peak = resident
		}
	}

	// IO passes: reading the raw input, the initial partition write + read,
	// plus BcalmExtraIOPasses full traversals of the partition data for
	// compaction and MPHF hashing of junction k-mers (Table III note).
	partBytes := store.TotalBytes()
	passes := 2 + cfg.Cal.BcalmExtraIOPasses
	st.IOSeconds = cfg.Cal.ReadSeconds(cfg.Medium, fastq.ApproxFASTQBytes(reads)) +
		float64(passes)*(cfg.Cal.ReadSeconds(cfg.Medium, partBytes)+
			cfg.Cal.WriteSeconds(cfg.Medium, partBytes))/2

	st.Seconds = st.PartitionSeconds + st.SortMergeSeconds + st.IOSeconds
	st.PeakMemoryBytes = peak

	g, err := graph.Merge(cfg.K, subs...)
	if err != nil {
		return nil, Stats{}, err
	}
	return g, st, nil
}

// readPartition decodes one partition's superkmers, copying buffers.
func readPartition(store *iosim.Store, name string) ([]msp.Superkmer, error) {
	r, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	dec := msp.NewDecoder(r)
	var sks []msp.Superkmer
	for {
		sk, err := dec.Next()
		if err == io.EOF {
			return sks, nil
		}
		if err != nil {
			return nil, err
		}
		bases := make([]dna.Base, len(sk.Bases))
		copy(bases, sk.Bases)
		sk.Bases = bases
		sks = append(sks, sk)
	}
}
