package hashtable

import (
	"sync"
	"testing"
)

// Tests and benchmarks for the sharded metrics counters: per-worker
// Inserter handles must keep Snapshot totals exact under concurrency, and
// the parallel insert benchmark contrasts the single shared shard (every
// worker funnelling through Table.InsertEdge, i.e. shard 0) with per-worker
// shards.

func TestInserterShardedConcurrent(t *testing.T) {
	edges, ref := randomEdges(80, 1000, 40000, 27)
	tab, err := New(27, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ins := tab.Inserter(w)
			for i := w; i < len(edges); i += workers {
				if err := ins.InsertEdge(edges[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	checkAgainstRef(t, tab, ref)
	m := tab.Metrics().Snapshot()
	if got := m.Inserts; got != int64(len(ref)) {
		t.Errorf("Inserts = %d, want %d", got, len(ref))
	}
	if got := m.Updates; got != int64(len(edges)-len(ref)) {
		t.Errorf("Updates = %d, want %d", got, len(edges)-len(ref))
	}
	if m.Probes < int64(len(edges)) {
		t.Errorf("Probes = %d, want at least one per access (%d)", m.Probes, len(edges))
	}
}

func TestInserterWorkerIndexAnyValue(t *testing.T) {
	// Worker indices beyond the shard count (and negative ones) must map to
	// a valid shard rather than panic; totals stay exact.
	edges, ref := randomEdges(81, 64, 512, 27)
	tab, err := New(27, 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		if err := tab.Inserter(i*37 - 5).InsertEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := tab.Metrics().Snapshot().Inserts; got != int64(len(ref)) {
		t.Errorf("Inserts = %d, want %d", got, len(ref))
	}
}

func benchmarkParallelInsert(b *testing.B, sharded bool) {
	edges, _ := randomEdges(82, 1<<15, 1<<18, 27)
	tab, err := New(27, 1<<19)
	if err != nil {
		b.Fatal(err)
	}
	const workers = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Reset()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ins := tab.Inserter(0)
				if sharded {
					ins = tab.Inserter(w)
				}
				for j := w; j < len(edges); j += workers {
					if err := ins.InsertEdge(edges[j]); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(edges))), "ns/edge")
}

func BenchmarkInsertEdgeParallel(b *testing.B) {
	b.Run("shared-shard", func(b *testing.B) { benchmarkParallelInsert(b, false) })
	b.Run("sharded", func(b *testing.B) { benchmarkParallelInsert(b, true) })
}
