package server

import (
	"strings"

	"parahash"
	"parahash/internal/dna"
)

// lookupKmerDNA canonicalizes s and resolves it against the graph. Graph
// vertices are canonical k-mers, so both a k-mer and its reverse
// complement answer the same lookup — membership in the bi-directed graph.
func lookupKmerDNA(g *parahash.Graph, s string, k int) (QueryResult, error) {
	km := dna.KmerFromString(strings.ToUpper(s))
	canon, _ := km.Canonical(k)
	res := QueryResult{Kmer: strings.ToUpper(s), Canonical: canon.String(k)}
	v, ok := g.Lookup(canon)
	if !ok {
		return res, nil
	}
	res.Present = true
	res.Multiplicity = v.Multiplicity()
	res.Degree = v.Degree()
	return res, nil
}
