package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parahash"
	"parahash/internal/msp"
)

func TestRunProfile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.dbg")
	var buf bytes.Buffer
	err := run([]string{"-profile", "tiny", "-partitions", "8", "-threads", "4",
		"-out", out, "-gpus", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"distinct vertices", "step 1", "step 2", "workload", "graph written"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := parahash.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Error("written graph is empty")
	}
}

func TestRunFileInput(t *testing.T) {
	dir := t.TempDir()
	fastqPath := filepath.Join(dir, "in.fastq")
	d, err := parahash.GenerateDataset(parahash.TinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(fastqPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := parahash.WriteFASTQ(f, d.Reads); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run([]string{"-in", fastqPath, "-partitions", "8", "-threads", "4",
		"-filter", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "filtered") {
		t.Errorf("filter output missing:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                   // no input
		{"-profile", "nope"}, // bad profile
		{"-profile", "tiny", "-medium", "floppy"},
		{"-profile", "tiny", "-in", "x"}, // mutually exclusive
		{"-in", "/does/not/exist.fastq"},
		{"-profile", "tiny", "-k", "1"}, // bad config
	}
	for i, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}

func TestRunObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	tracePath := filepath.Join(dir, "trace.json")
	memPath := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	err := run([]string{"-profile", "tiny", "-partitions", "8", "-threads", "4",
		"-gpus", "1",
		"-metrics-json", metricsPath,
		"-trace-out", tracePath,
		"-memprofile", memPath}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"performance model", "predicted", "contention reduction",
		"metrics written", "trace written", "heap profile written"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}

	// Metrics file: parses, carries the schema, and has a plausible
	// contention-reduction figure (§III-C3's ≈0.8 on duplicated k-mers)
	// plus Eq. 1 predictions for both steps.
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var m parahash.BuildMetrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if m.Schema != "parahash.metrics/v1" {
		t.Errorf("schema = %q", m.Schema)
	}
	if m.HashTable.ContentionReduction <= 0 || m.HashTable.ContentionReduction >= 1 {
		t.Errorf("contention reduction = %g, want in (0,1)", m.HashTable.ContentionReduction)
	}
	if len(m.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(m.Steps))
	}
	for _, st := range m.Steps {
		if st.PredictedSeconds <= 0 {
			t.Errorf("step %s predicted seconds = %g, want > 0", st.Name, st.PredictedSeconds)
		}
		if st.MeasuredSeconds <= 0 {
			t.Errorf("step %s measured seconds = %g, want > 0", st.Name, st.MeasuredSeconds)
		}
		var measured int
		for _, p := range st.Processors {
			if p.BusySeconds < 0 {
				t.Errorf("step %s processor %s busy %g", st.Name, p.Name, p.BusySeconds)
			}
			measured += p.MeasuredPartitions
		}
		if measured != st.Partitions {
			t.Errorf("step %s measured partitions sum to %d, want %d", st.Name, measured, st.Partitions)
		}
	}
	// A fault-free run decodes exactly what was encoded, plus one integrity
	// footer per partition file (the written stat counts record bytes only).
	wantRead := m.MSP.EncodedBytesWritten + int64(m.Run.Partitions)*msp.FooterSize
	if m.MSP.EncodedBytesRead != wantRead {
		t.Errorf("decoded %d bytes, want %d (encoded %d + %d footers)",
			m.MSP.EncodedBytesRead, wantRead, m.MSP.EncodedBytesWritten, m.Run.Partitions)
	}

	// Trace file: valid Chrome trace JSON with one complete virtual-time
	// read/compute/write span per step2 partition.
	rawTrace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Args struct {
				Partition *int   `json:"partition"`
				Stage     string `json:"stage"`
				Clock     string `json:"clock"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rawTrace, &tr); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	step2Spans := map[string]map[int]int{} // stage -> partition -> count
	for _, e := range tr.TraceEvents {
		if e.Ph != "X" || e.Cat != "step2" || e.Args.Clock != "virtual" {
			continue
		}
		if step2Spans[e.Args.Stage] == nil {
			step2Spans[e.Args.Stage] = map[int]int{}
		}
		if e.Args.Partition != nil {
			step2Spans[e.Args.Stage][*e.Args.Partition]++
		}
	}
	for _, stage := range []string{"read", "compute", "write"} {
		perPart := step2Spans[stage]
		if len(perPart) != 8 {
			t.Errorf("step2 %s spans cover %d partitions, want 8", stage, len(perPart))
		}
		for part, c := range perPart {
			if c != 1 {
				t.Errorf("step2 %s partition %d has %d virtual spans, want 1", stage, part, c)
			}
		}
	}

	if st, err := os.Stat(memPath); err != nil || st.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}
}

func TestRunPprofServer(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-profile", "tiny", "-partitions", "8", "-threads", "2",
		"-pprof-addr", "127.0.0.1:0"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pprof server listening on") {
		t.Errorf("output missing pprof banner:\n%s", buf.String())
	}
}

func TestRunHostCalibration(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-profile", "tiny", "-partitions", "8", "-threads", "2",
		"-host-calibration"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "virtual time") {
		t.Errorf("output:\n%s", buf.String())
	}
}
