package hashtable_test

import (
	"testing"

	"parahash/internal/hashtable"
	"parahash/internal/hashtable/hashtabletest"
)

// TestKmerTableConformance runs the shared KmerTable contract suite over
// every backend. CI runs this under the race detector; the suite's
// concurrent-insert subtest is the linearizability check for the lock-free
// and sharded paths.
func TestKmerTableConformance(t *testing.T) {
	for _, b := range hashtable.Backends() {
		b := b
		t.Run(string(b), func(t *testing.T) {
			hashtabletest.Run(t, func(t *testing.T, k, capacity int) hashtable.KmerTable {
				tab, err := hashtable.NewBackend(b, k, capacity)
				if err != nil {
					t.Fatalf("NewBackend(%s, %d, %d): %v", b, k, capacity, err)
				}
				return tab
			})
		})
	}
}

// TestParseBackend pins the CLI surface: every listed backend round-trips,
// the empty string selects the state-transfer reference, and unknown names
// are rejected with the valid set in the message.
func TestParseBackend(t *testing.T) {
	for _, b := range hashtable.Backends() {
		got, err := hashtable.ParseBackend(string(b))
		if err != nil || got != b {
			t.Errorf("ParseBackend(%q) = %v, %v", b, got, err)
		}
	}
	if got, err := hashtable.ParseBackend(""); err != nil || got != hashtable.BackendStateTransfer {
		t.Errorf("ParseBackend(\"\") = %v, %v, want statetransfer", got, err)
	}
	if _, err := hashtable.ParseBackend("cuckoo"); err == nil {
		t.Error("ParseBackend accepted unknown backend")
	}
}

// TestMemoryBytesForBackend checks each backend's admission-weight predictor
// agrees with what a freshly built table actually reports — the Step 2
// memory gate admits partitions by the prediction, so a divergence would
// let real residency exceed the budget.
func TestMemoryBytesForBackend(t *testing.T) {
	for _, b := range hashtable.Backends() {
		for _, k := range []int{27, 33} {
			tab, err := hashtable.NewBackend(b, k, 1<<14)
			if err != nil {
				t.Fatal(err)
			}
			predicted := hashtable.MemoryBytesForBackend(b, k, 1<<14)
			if got := tab.MemoryBytes(); got != predicted {
				t.Errorf("%s k=%d: MemoryBytes() = %d, predictor says %d", b, k, got, predicted)
			}
		}
	}
}
