package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"parahash/internal/pipeline"
)

// sampleTrace builds a trace with both clocks and both steps, anchored at a
// fixed epoch so the wall spans are deterministic.
func sampleTrace() *Trace {
	epoch := time.Date(2025, 1, 2, 3, 4, 5, 0, time.UTC)
	tr := NewTraceAt(epoch)

	// Wall-clock spans as a live pipeline run would record them via
	// StepTracer: read/compute/write for two partitions of step1.
	st := &StepTracer{T: tr, Step: "step1", Workers: []string{"CPU", "GPU0"}}
	at := func(ms int) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }
	st.StageSpan(pipeline.StageRead, 0, -1, at(0), at(10))
	st.StageSpan(pipeline.StageCompute, 0, 0, at(10), at(50))
	st.StageSpan(pipeline.StageWrite, 0, -1, at(50), at(55))
	st.StageSpan(pipeline.StageRead, 1, -1, at(10), at(20))
	st.StageSpan(pipeline.StageCompute, 1, 1, at(20), at(45))
	st.StageSpan(pipeline.StageWrite, 1, -1, at(55), at(60))

	// Virtual-time spans replayed from a schedule for step2.
	TraceSchedule(tr, "step2", []string{"CPU", "GPU0"}, pipeline.Schedule{
		Assignment:   []int{0, 1},
		InputStart:   []float64{0, 0.1},
		InputEnd:     []float64{0.1, 0.2},
		ComputeStart: []float64{0.1, 0.2},
		ComputeEnd:   []float64{0.6, 0.5},
		OutputStart:  []float64{0.6, 0.7},
		OutputEnd:    []float64{0.7, 0.8},
	})
	return tr
}

func TestWriteChromeJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden.json", buf.Bytes())
}

func TestWriteChromeJSONStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Args struct {
				Name  string `json:"name"`
				Stage string `json:"stage"`
				Clock string `json:"clock"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}
	var wallProcs, virtProcs, complete, meta int
	stages := map[string]int{}
	for _, e := range decoded.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name == "process_name" {
				switch e.Args.Name {
				case "wall-clock":
					wallProcs++
				case "virtual-time":
					virtProcs++
				}
			}
		case "X":
			complete++
			stages[e.Args.Stage]++
			if e.Ts < 0 {
				t.Errorf("event %q has negative timestamp", e.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if wallProcs != 1 || virtProcs != 1 {
		t.Errorf("process rows: wall=%d virtual=%d, want 1 each", wallProcs, virtProcs)
	}
	// 2 partitions × 3 stages × 2 clocks.
	if complete != 12 {
		t.Errorf("complete events = %d, want 12", complete)
	}
	for _, stage := range []string{pipeline.StageRead, pipeline.StageCompute, pipeline.StageWrite} {
		if stages[stage] != 4 {
			t.Errorf("stage %s events = %d, want 4", stage, stages[stage])
		}
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				tr.RecordVirtual("step1", pipeline.StageCompute, i, g, "CPU", float64(i), float64(i+1))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := len(tr.Spans()); got != 400 {
		t.Errorf("recorded %d spans, want 400", got)
	}
}

func TestTraceScheduleAttribution(t *testing.T) {
	tr := NewTraceAt(time.Unix(0, 0))
	TraceSchedule(tr, "step1", []string{"CPU", "GPU0"}, pipeline.Schedule{
		Assignment:   []int{1},
		InputStart:   []float64{0},
		InputEnd:     []float64{1},
		ComputeStart: []float64{1},
		ComputeEnd:   []float64{2},
		OutputStart:  []float64{2},
		OutputEnd:    []float64{3},
	})
	for _, s := range tr.Spans() {
		if s.Clock != ClockVirtual {
			t.Errorf("schedule span clock = %q", s.Clock)
		}
		if s.Stage == pipeline.StageCompute && s.WorkerName != "GPU0" {
			t.Errorf("compute span attributed to %q, want GPU0", s.WorkerName)
		}
	}
}
