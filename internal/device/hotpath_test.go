package device

import (
	"context"
	"testing"

	"parahash/internal/costmodel"
	"parahash/internal/msp"
)

// Tests and benchmarks for the hot-path overhaul on the device layer:
// scan-time partition stamping, per-device scratch reuse, the shared GPU
// transfer formula, and the kmer-weighted Step 2 chunking.

func TestStep1PartitionStamps(t *testing.T) {
	reads := testReads(t)
	cal := costmodel.DefaultCalibration()
	const np = 64
	for _, proc := range []Processor{
		&CPU{Threads: 4, Cal: cal, Partitions: np},
		&GPU{Cal: cal, Partitions: np},
	} {
		out, err := proc.Step1(context.Background(), reads, 27, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i, sk := range out.Superkmers {
			if !sk.PartValid {
				t.Fatalf("%s: superkmer %d missing partition stamp", proc.Name(), i)
			}
			if want := msp.Partition(sk.Minimizer, np); int(sk.Part) != want {
				t.Fatalf("%s: superkmer %d stamped %d, want %d", proc.Name(), i, sk.Part, want)
			}
		}
	}
}

func TestCPUStep1ScratchReuseDeterministic(t *testing.T) {
	// One CPU value reused across chunks — the pipeline's usage — must keep
	// producing the same output as a fresh device.
	reads := testReads(t)
	cal := costmodel.DefaultCalibration()
	reused := &CPU{Threads: 4, Cal: cal, Partitions: 16}
	for round := 0; round < 3; round++ {
		got, err := reused.Step1(context.Background(), reads, 27, 11)
		if err != nil {
			t.Fatal(err)
		}
		want, err := (&CPU{Threads: 4, Cal: cal, Partitions: 16}).Step1(context.Background(), reads, 27, 11)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Superkmers) != len(want.Superkmers) || got.Bases != want.Bases {
			t.Fatalf("round %d: reused device output diverged", round)
		}
		for i := range got.Superkmers {
			g, w := got.Superkmers[i], want.Superkmers[i]
			if g.Minimizer != w.Minimizer || g.Part != w.Part || len(g.Bases) != len(w.Bases) {
				t.Fatalf("round %d: superkmer %d differs between reused and fresh device", round, i)
			}
		}
	}
}

func TestStep1TransferBytesShared(t *testing.T) {
	if got := Step1TransferBytes(400, 10); got != 400/4+10*12 {
		t.Fatalf("Step1TransferBytes(400, 10) = %d", got)
	}
	// The GPU's reported transfer must use the shared formula.
	reads := testReads(t)
	gpu := &GPU{Cal: costmodel.DefaultCalibration()}
	out, err := gpu.Step1(context.Background(), reads, 27, 11)
	if err != nil {
		t.Fatal(err)
	}
	if want := Step1TransferBytes(out.Bases, int64(len(out.Superkmers))); out.TransferBytes != want {
		t.Fatalf("GPU transfer %d, want %d", out.TransferBytes, want)
	}
}

func TestStep2Chunks(t *testing.T) {
	reads := testReads(t)
	sks := gatherSuperkmers(t, reads, 27, 11)
	var kmers int64
	for _, sk := range sks {
		kmers += int64(sk.NumKmers(27))
	}
	for _, workers := range []int{1, 3, 8} {
		ends := step2Chunks(nil, sks, 27, kmers, workers)
		if len(ends) == 0 || ends[len(ends)-1] != len(sks) {
			t.Fatalf("workers=%d: chunk ends %v do not cover the input", workers, ends)
		}
		prev := 0
		grain := kmers / int64(workers*step2ChunksPerThread)
		if grain < 1 {
			grain = 1
		}
		for ci, end := range ends {
			if end <= prev {
				t.Fatalf("workers=%d: chunk %d empty or out of order (%v)", workers, ci, ends)
			}
			var w int64
			for _, sk := range sks[prev:end] {
				w += int64(sk.NumKmers(27))
			}
			// Every chunk except the last must have reached the grain.
			if ci < len(ends)-1 && w < grain {
				t.Fatalf("workers=%d: chunk %d weight %d below grain %d", workers, ci, w, grain)
			}
			prev = end
		}
	}
	if ends := step2Chunks(nil, nil, 27, 0, 4); len(ends) != 0 {
		t.Fatalf("empty input produced chunks %v", ends)
	}
}

func BenchmarkStep1Scan(b *testing.B) {
	reads := testReads(b)
	var bases int64
	for _, rd := range reads {
		bases += int64(len(rd.Bases))
	}
	cpu := &CPU{Threads: 1, Cal: costmodel.DefaultCalibration(), Partitions: 64}
	ctx := context.Background()
	if _, err := cpu.Step1(ctx, reads, 27, 11); err != nil { // warm scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Step1(ctx, reads, 27, 11); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*bases), "ns/base")
}

func BenchmarkCPUStep2(b *testing.B) {
	reads := testReads(b)
	sks := gatherSuperkmers(b, reads, 27, 11)
	cpu := &CPU{Threads: 8, Cal: costmodel.DefaultCalibration()}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Step2(ctx, sks, 27, 1<<16); err != nil {
			b.Fatal(err)
		}
	}
}
