// Package obs is ParaHash's observability layer: a metrics registry that
// gathers the quantities the paper's evaluation is built on — hash-table
// state-transfer contention (§III-C3), per-processor workload distribution
// (§III-E, Fig. 11), MSP encoding effectiveness (§III-B), and the Eq. 1–2
// performance-model predictions of §IV — plus a schedule tracer that
// exports per-partition pipeline stage spans as Chrome trace-event JSON
// (viewable in Perfetto or chrome://tracing), and pprof hooks for live
// profiling of real runs.
//
// The package is a leaf: it depends only on the pipeline package (for
// virtual-schedule conversion) so every other layer can feed it without
// import cycles. All encoders emit fields in a fixed order, making outputs
// golden-testable and diff-friendly.
package obs

import (
	"encoding/json"
	"io"
)

// MetricsSchema identifies the metrics JSON layout; bump on breaking
// changes so downstream dashboards can dispatch on it.
const MetricsSchema = "parahash.metrics/v1"

// HashTableMetrics aggregates the state-transfer hash table counters across
// every Step 2 partition. ContentionReduction is Updates/(Inserts+Updates):
// the fraction of key accesses that avoided locking, ≈0.8 on the paper's
// datasets ("reduce the contentious lock on the keys by 80%").
type HashTableMetrics struct {
	Inserts             int64   `json:"inserts"`
	Updates             int64   `json:"updates"`
	Probes              int64   `json:"probes"`
	LockWaits           int64   `json:"lock_waits"`
	CASFailures         int64   `json:"cas_failures"`
	ContentionReduction float64 `json:"contention_reduction"`
	ProbesPerAccess     float64 `json:"probes_per_access"`
}

// MSPMetrics records Step 1's encoding effectiveness and Step 2's decode
// traffic. EncodingRatio is encoded/plain bytes (≈0.26 with 2-bit packing).
type MSPMetrics struct {
	Superkmers          int64   `json:"superkmers"`
	Kmers               int64   `json:"kmers"`
	EncodedBytesWritten int64   `json:"encoded_bytes_written"`
	EncodedBytesRead    int64   `json:"encoded_bytes_read"`
	PlainBytes          int64   `json:"plain_bytes"`
	EncodingRatio       float64 `json:"encoding_ratio"`
}

// ProcessorMetrics is one processor's share of a step.
type ProcessorMetrics struct {
	Name        string  `json:"name"`
	BusySeconds float64 `json:"busy_seconds"`
	WorkUnits   int64   `json:"work_units"`
	// Partitions is the virtual schedule's partition count for this
	// processor; MeasuredPartitions is the live run's (from the pipeline
	// report's assignment — never-produced partitions attributed to no one).
	Partitions         int     `json:"partitions"`
	MeasuredPartitions int     `json:"measured_partitions"`
	Share              float64 `json:"share"`
	ShareIdeal         float64 `json:"share_ideal"`
	SoloSeconds        float64 `json:"solo_seconds"`
}

// StepMetrics records one pipeline step, including the predicted-vs-measured
// model validation: PredictedSeconds evaluates Eq. 1 from the measured stage
// totals, PredictedCoprocessingSeconds Eq. 2 from the solo times, and
// ModelErrorPct is (measured−predicted)/predicted · 100.
type StepMetrics struct {
	Name                         string             `json:"name"`
	Partitions                   int                `json:"partitions"`
	MeasuredSeconds              float64            `json:"measured_seconds"`
	PredictedSeconds             float64            `json:"predicted_seconds"`
	PredictedCoprocessingSeconds float64            `json:"predicted_coprocessing_seconds"`
	ModelErrorPct                float64            `json:"model_error_pct"`
	NonPipelinedSeconds          float64            `json:"non_pipelined_seconds"`
	InputSeconds                 float64            `json:"input_seconds"`
	OutputSeconds                float64            `json:"output_seconds"`
	Retries                      int                `json:"retries"`
	Requeues                     int                `json:"requeues"`
	BackoffSeconds               float64            `json:"backoff_seconds"`
	Quarantined                  []string           `json:"quarantined,omitempty"`
	Processors                   []ProcessorMetrics `json:"processors"`
	WatchdogKills                int                `json:"watchdog_kills"`
	CanceledAttempts             int                `json:"canceled_attempts"`
	Admissions                   int64              `json:"admissions"`
	AdmissionWaits               int64              `json:"admission_waits"`
	AdmissionWaitSeconds         float64            `json:"admission_wait_seconds"`
	PeakAdmittedBytes            int64              `json:"peak_admitted_bytes"`
}

// RunInfo pins the configuration a metrics file was produced under.
type RunInfo struct {
	K          int      `json:"k"`
	P          int      `json:"p"`
	Partitions int      `json:"partitions"`
	Medium     string   `json:"medium"`
	Processors []string `json:"processors"`
}

// Totals summarises the whole build.
type Totals struct {
	Seconds           float64 `json:"seconds"`
	TotalKmers        int64   `json:"total_kmers"`
	DistinctVertices  int64   `json:"distinct_vertices"`
	DuplicateVertices int64   `json:"duplicate_vertices"`
	PeakMemoryBytes   int64   `json:"peak_memory_bytes"`
	Degraded          bool    `json:"degraded"`
}

// ResilienceMetrics aggregates fault handling across both steps, including
// checkpoint/resume outcomes: partitions skipped because a prior run's
// durable output verified, and claimed partitions that failed verification
// and were re-executed.
type ResilienceMetrics struct {
	Retries           int      `json:"retries"`
	Requeues          int      `json:"requeues"`
	BackoffSeconds    float64  `json:"backoff_seconds"`
	Quarantined       []string `json:"quarantined,omitempty"`
	ResumedPartitions int      `json:"resumed_partitions"`
	RebuiltPartitions int      `json:"rebuilt_partitions"`
}

// GovernanceMetrics aggregates the run-governance counters across both
// steps: cancellation accounting, watchdog kills, and the memory-budget
// admission controller's work. All zero on an ungoverned run.
type GovernanceMetrics struct {
	// Cancellations counts stage attempts cut short by context
	// cancellation (a completed run that was never canceled reports 0).
	Cancellations int `json:"cancellations"`
	// WatchdogKills counts partition attempts abandoned after exceeding
	// the configured partition deadline.
	WatchdogKills int `json:"watchdog_kills"`
	// MemoryBudgetBytes echoes the configured admission budget (0 = off).
	MemoryBudgetBytes int64 `json:"memory_budget_bytes"`
	// Admissions counts partitions admitted through the budget gate.
	Admissions int64 `json:"admissions"`
	// AdmissionWaits counts admissions that queued for budget.
	AdmissionWaits int64 `json:"admission_waits"`
	// AdmissionWaitSeconds is total wall-clock time spent queued.
	AdmissionWaitSeconds float64 `json:"admission_wait_seconds"`
	// PeakAdmittedBytes is the largest concurrently admitted predicted
	// footprint; by construction ≤ MemoryBudgetBytes when the gate is on.
	PeakAdmittedBytes int64 `json:"peak_admitted_bytes"`
}

// SpillMetrics aggregates the out-of-core Step 2 path's work: partitions
// whose predicted hash table exceeded their memory budget and were
// constructed by external-memory sort-merge instead. All zero when every
// partition fit in-core.
type SpillMetrics struct {
	// SpilledPartitions counts partitions constructed out-of-core;
	// AutoRouted is the subset routed automatically because their table
	// prediction exceeded the whole build's memory budget with no
	// per-partition budget configured.
	SpilledPartitions int `json:"spilled_partitions"`
	AutoRouted        int `json:"auto_routed"`
	// SpillRuns and SpillBytes are the sorted run files spilled to the
	// store and their total serialized size.
	SpillRuns  int64 `json:"spill_runs"`
	SpillBytes int64 `json:"spill_bytes"`
	// MergePasses counts merge passes performed (final streaming merges
	// included; >1 per partition means the fan-in forced reduction passes).
	MergePasses int64 `json:"merge_passes"`
	// PartitionMemoryBudgetBytes echoes the configured per-partition
	// budget (0 = auto-routing against the build budget only).
	PartitionMemoryBudgetBytes int64 `json:"partition_memory_budget_bytes"`
}

// DistMetrics aggregates the distributed-build fault-tolerance counters: a
// coordinator's record of how the worker fleet behaved. Present only on
// `-workers=N` runs (the field is omitted for single-process builds, so
// existing consumers of the schema are unaffected).
type DistMetrics struct {
	// Workers is the configured fleet size; Spawned counts worker
	// processes actually started, replacements included.
	Workers int `json:"workers"`
	Spawned int `json:"spawned"`
	// LeaseGrants counts partition-range leases granted; LeaseExpiries
	// counts leases revoked after missing their heartbeat deadline.
	LeaseGrants   int64 `json:"lease_grants"`
	LeaseExpiries int64 `json:"lease_expiries"`
	// Reassignments counts partitions re-leased to a surviving worker.
	Reassignments int64 `json:"reassignments"`
	// FencedWrites counts stale-token results rejected — each one a write
	// that fencing prevented from corrupting a re-assigned partition.
	FencedWrites int64 `json:"fenced_writes"`
	// WorkerQuarantines counts workers removed after exhausting their
	// failure budget.
	WorkerQuarantines int64 `json:"worker_quarantines"`
}

// BuildMetrics is the one-stop registry for a finished construction run —
// the struct the -metrics-json flag serialises. Field order is the schema;
// keep additions append-only within each struct.
type BuildMetrics struct {
	Schema     string            `json:"schema"`
	Run        RunInfo           `json:"run"`
	Totals     Totals            `json:"totals"`
	HashTable  HashTableMetrics  `json:"hash_table"`
	MSP        MSPMetrics        `json:"msp"`
	Steps      []StepMetrics     `json:"steps"`
	Resilience ResilienceMetrics `json:"resilience"`
	Governance GovernanceMetrics `json:"governance"`
	Spill      SpillMetrics      `json:"spill"`
	Dist       *DistMetrics      `json:"dist,omitempty"`
}

// WriteJSON serialises the registry with stable field ordering and a
// trailing newline.
func (m *BuildMetrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ContentionReductionOf computes Updates/(Inserts+Updates), the §III-C3
// lock-avoidance fraction, guarding the empty case.
func ContentionReductionOf(inserts, updates int64) float64 {
	if inserts+updates == 0 {
		return 0
	}
	return float64(updates) / float64(inserts+updates)
}

// ModelErrorPct returns (measured−predicted)/predicted · 100, or 0 when the
// prediction is zero (nothing to validate against).
func ModelErrorPct(predicted, measured float64) float64 {
	if predicted == 0 {
		return 0
	}
	return (measured - predicted) / predicted * 100
}
