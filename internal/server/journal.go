// Package server implements parahashd's fault-hardened job lifecycle: a
// multi-tenant build/query service whose jobs survive process death.
//
// The package splits into three layers. The Journal (this file) is the
// durable source of truth: one JSON file, published with the same
// tmp+fsync+rename discipline as the checkpoint manifest, recording every
// job's spec and lifecycle state. The Manager (manager.go) owns the
// runtime: cross-job admission through a pipeline.Gate charged with each
// job's whole-graph Property-1 footprint, per-job deadlines feeding the
// pipeline watchdog, jittered retries on transient store faults, graceful
// drain, and crash recovery (scrub + resume) on startup. The HTTP layer
// (http.go) is a thin typed facade over the Manager.
package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// JournalSchema versions the job journal format.
const JournalSchema = "parahash.jobs/v1"

// State is a job's lifecycle state. The transitions form the state machine
// documented in DESIGN §14:
//
//	queued → running → done
//	                 ↘ failed
//	queued/running → canceled
//
// "Shed" is deliberately not a journalled state: an overloaded server
// rejects the submission with HTTP 429 before anything is persisted, so a
// flood of rejected work cannot grow the journal without bound. A SIGKILL
// leaves running jobs journalled as running; startup recovery re-queues
// them with Resume set, which is what makes the state durable rather than
// merely persistent.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is the client-supplied build parameterisation. Zero fields take
// the server's defaults.
type JobSpec struct {
	K            int     `json:"k,omitempty"`
	P            int     `json:"p,omitempty"`
	Partitions   int     `json:"partitions,omitempty"`
	TableBackend string  `json:"table_backend,omitempty"`
	FilterMin    int     `json:"filter_min,omitempty"`
	DeadlineSecs float64 `json:"deadline_secs,omitempty"`
}

// JobRecord is one journalled job: its spec, lifecycle state, and — once
// terminal — its outcome. Everything a restarted server needs to resume or
// report the job lives here; the bulky artifacts (input FASTQ, checkpoint,
// graph, metrics) live in the job's directory on disk.
type JobRecord struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Spec  JobSpec `json:"spec"`

	// TotalKmers is the input's k-mer count, measured once at submission;
	// a restarted server recomputes the job's admission weight from it
	// without re-parsing the input.
	TotalKmers int64 `json:"total_kmers"`
	// WeightBytes is the Property-1 predicted whole-graph hash-table
	// footprint charged against the cross-job admission gate.
	WeightBytes int64 `json:"weight_bytes"`

	// Attempts counts build attempts (including resumed ones after a
	// server restart or a transient-fault retry).
	Attempts int `json:"attempts,omitempty"`
	// Resumed marks that at least one attempt resumed from the job's
	// checkpoint rather than starting fresh.
	Resumed bool `json:"resumed,omitempty"`

	// Error carries the terminal failure (failed/canceled states).
	Error string `json:"error,omitempty"`
	// Vertices and Edges describe the completed graph (done state).
	Vertices int64 `json:"vertices,omitempty"`
	Edges    int64 `json:"edges,omitempty"`

	SubmittedUnix int64 `json:"submitted_unix"`
	StartedUnix   int64 `json:"started_unix,omitempty"`
	FinishedUnix  int64 `json:"finished_unix,omitempty"`
}

// journalFile is the serialised journal document. MaxSeq pins the id
// sequence's high-water mark so compaction can drop old terminal records
// without ever letting a restarted server reuse their ids.
type journalFile struct {
	Schema string      `json:"schema"`
	MaxSeq int         `json:"max_seq,omitempty"`
	Jobs   []JobRecord `json:"jobs"`
}

// Journal is the durable job table. Every mutation is persisted before it
// is acknowledged, with the manifest's atomic-publication discipline, so
// the journal a restarted server loads is always a consistent snapshot
// from some prefix of acknowledged mutations — never a torn write.
type Journal struct {
	mu   sync.Mutex
	path string
	jobs map[string]JobRecord
	// order preserves submission order for listings.
	order []string
	// maxSeq is the id sequence high-water mark, covering compacted-away
	// records too.
	maxSeq int
}

// OpenJournal loads the journal at path, creating an empty one if the file
// does not exist yet.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path, jobs: make(map[string]JobRecord)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: reading job journal: %w", err)
	}
	var doc journalFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("server: corrupt job journal %s: %w", path, err)
	}
	if doc.Schema != JournalSchema {
		return nil, fmt.Errorf("server: job journal %s has schema %q, want %q", path, doc.Schema, JournalSchema)
	}
	for _, r := range doc.Jobs {
		if r.ID == "" {
			return nil, fmt.Errorf("server: job journal %s has a record without an id", path)
		}
		if _, dup := j.jobs[r.ID]; dup {
			return nil, fmt.Errorf("server: job journal %s has duplicate id %q", path, r.ID)
		}
		j.jobs[r.ID] = r
		j.order = append(j.order, r.ID)
	}
	j.maxSeq = doc.MaxSeq
	if n := j.maxSeqFromIDsLocked(); n > j.maxSeq {
		j.maxSeq = n
	}
	return j, nil
}

// Get returns the record for id.
func (j *Journal) Get(id string) (JobRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.jobs[id]
	return r, ok
}

// List returns every record in submission order.
func (j *Journal) List() []JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JobRecord, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, j.jobs[id])
	}
	return out
}

// Put journals a new or updated record durably; the mutation is visible to
// readers only after the bytes are published.
func (j *Journal) Put(r JobRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, existed := j.jobs[r.ID]
	// Stage the mutation, persist, and only then commit it to the in-memory
	// view; a failed save leaves both the file and the view unchanged.
	staged := r
	if err := j.saveLocked(staged, existed); err != nil {
		return err
	}
	j.jobs[r.ID] = staged
	if !existed {
		j.order = append(j.order, r.ID)
	}
	return nil
}

// Update applies fn to the record for id and persists the result.
func (j *Journal) Update(id string, fn func(*JobRecord)) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.jobs[id]
	if !ok {
		return fmt.Errorf("server: journal update: unknown job %q", id)
	}
	fn(&r)
	r.ID = id // fn must not re-key the record
	if err := j.saveLocked(r, true); err != nil {
		return err
	}
	j.jobs[id] = r
	return nil
}

// MaxSeq returns the id sequence high-water mark — the largest numeric
// suffix among "j<N>" ids ever journalled, including records compaction has
// since dropped — so a restarted server continues the sequence instead of
// reusing ids.
func (j *Journal) MaxSeq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n := j.maxSeqFromIDsLocked(); n > j.maxSeq {
		j.maxSeq = n
	}
	return j.maxSeq
}

func (j *Journal) maxSeqFromIDsLocked() int {
	max := 0
	for id := range j.jobs {
		var n int
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > max {
			max = n
		}
	}
	return max
}

// Compact drops terminal records beyond the most recent retain, rewriting
// the journal atomically. Non-terminal records are always kept — recovery
// after a compacting restart is identical to recovery without it — and the
// max_seq high-water in the rewritten file keeps dropped ids retired
// forever. Returns how many records were dropped.
func (j *Journal) Compact(retain int) (int, error) {
	if retain < 0 {
		retain = 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n := j.maxSeqFromIDsLocked(); n > j.maxSeq {
		j.maxSeq = n
	}
	terminal := 0
	for _, id := range j.order {
		if j.jobs[id].State.Terminal() {
			terminal++
		}
	}
	drop := terminal - retain
	if drop <= 0 {
		return 0, nil
	}
	// Submission order is oldest-first: walk from the front, dropping
	// terminal records until the budget is met.
	keptOrder := make([]string, 0, len(j.order)-drop)
	keptJobs := make(map[string]JobRecord, len(j.jobs)-drop)
	dropped := 0
	for _, id := range j.order {
		if dropped < drop && j.jobs[id].State.Terminal() {
			dropped++
			continue
		}
		keptOrder = append(keptOrder, id)
		keptJobs[id] = j.jobs[id]
	}
	// Persist the compacted view before committing it in memory; a failed
	// rewrite leaves the full journal intact.
	prevJobs, prevOrder := j.jobs, j.order
	j.jobs, j.order = keptJobs, keptOrder
	if err := j.persistLocked(); err != nil {
		j.jobs, j.order = prevJobs, prevOrder
		return 0, err
	}
	return dropped, nil
}

// saveLocked persists the journal including the staged record, atomically:
// marshal, write "<path>.tmp", fsync, rename, fsync the directory. A crash
// at any point leaves either the old or the new journal, never a mix.
func (j *Journal) saveLocked(staged JobRecord, existed bool) error {
	var n int
	if _, err := fmt.Sscanf(staged.ID, "j%d", &n); err == nil && n > j.maxSeq {
		j.maxSeq = n
	}
	doc := journalFile{Schema: JournalSchema, MaxSeq: j.maxSeq}
	ids := j.order
	if !existed {
		ids = append(append([]string(nil), j.order...), staged.ID)
	}
	for _, id := range ids {
		r := j.jobs[id]
		if id == staged.ID {
			r = staged
		}
		doc.Jobs = append(doc.Jobs, r)
	}
	return j.writeDoc(doc)
}

// persistLocked rewrites the journal from the current in-memory view.
func (j *Journal) persistLocked() error {
	doc := journalFile{Schema: JournalSchema, MaxSeq: j.maxSeq}
	for _, id := range j.order {
		doc.Jobs = append(doc.Jobs, j.jobs[id])
	}
	return j.writeDoc(doc)
}

// writeDoc publishes one serialised journal document atomically.
func (j *Journal) writeDoc(doc journalFile) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding job journal: %w", err)
	}
	data = append(data, '\n')

	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("server: writing job journal: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("server: writing job journal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: writing job journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: publishing job journal: %w", err)
	}
	if d, err := os.Open(filepath.Dir(j.path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
