package main

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// tinyConfig keeps the measurement loops to a few milliseconds so the test
// exercises every code path without benchmark-grade runtimes.
func tinyConfig() config {
	return config{
		minDur:   2 * time.Millisecond,
		reads:    20,
		readLen:  101,
		smallSks: 64,
		giantSks: 4,
		giantLen: 200,
		edges:    1 << 10,
	}
}

func TestMeasureAll(t *testing.T) {
	rep, err := measureAll(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "parahash.bench_hotpath/v3" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d", rep.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	c := rep.Canonicalization
	if c.BeforeNsPerKmer <= 0 || c.AfterNsPerKmer <= 0 || c.RCSpeedup <= 0 {
		t.Errorf("canonicalization not measured: %+v", c)
	}
	if rep.Scanner.NsPerBase <= 0 {
		t.Errorf("scanner not measured: %+v", rep.Scanner)
	}
	if rep.Scanner.AllocsPerRead != 0 {
		t.Errorf("warmed scanner allocates %.1f objects/read, want 0", rep.Scanner.AllocsPerRead)
	}
	if rep.Step2.AfterSeconds <= 0 {
		t.Errorf("step2 not measured: %+v", rep.Step2)
	}
	if rep.Step2.Authoritative {
		if rep.Step2.Degraded {
			t.Error("step2 comparison marked authoritative on a degraded host")
		}
		if rep.Step2.BeforeSeconds <= 0 || rep.Step2.Speedup <= 0 {
			t.Errorf("authoritative step2 comparison not measured: %+v", rep.Step2)
		}
	} else {
		// Honesty contract: a degraded host must not record a comparison
		// at all — a clamped "regression" is scheduler noise.
		if rep.Step2.BeforeSeconds != 0 || rep.Step2.Speedup != 0 {
			t.Errorf("non-authoritative step2 still carries comparison figures: %+v", rep.Step2)
		}
	}
	if rep.Counters.SharedNsPerEdge <= 0 || rep.Counters.ShardedNsPerEdge <= 0 {
		t.Errorf("counters not measured: %+v", rep.Counters)
	}
	tb := rep.TableBackends
	if want := 3 * 4; len(tb.Runs) != want {
		t.Fatalf("table_backends has %d runs, want %d (3 backends x 4 worker counts)", len(tb.Runs), want)
	}
	if tb.Edges <= 0 || tb.Distinct <= 0 {
		t.Errorf("table_backends workload not recorded: %+v", tb)
	}
	for _, r := range tb.Runs {
		if r.NsPerEdge <= 0 || r.ProbesPerEdge <= 0 {
			t.Errorf("%s/%dw: not measured: %+v", r.Backend, r.RequestedWorkers, r)
		}
		if r.EffectiveWorkers > runtime.GOMAXPROCS(0) {
			t.Errorf("%s/%dw: effective workers %d exceed GOMAXPROCS %d",
				r.Backend, r.RequestedWorkers, r.EffectiveWorkers, runtime.GOMAXPROCS(0))
		}
		if r.MaxMeanImbalance < 1 && r.EffectiveWorkers > 1 {
			t.Errorf("%s/%dw: max/mean imbalance %.2f below 1", r.Backend, r.RequestedWorkers, r.MaxMeanImbalance)
		}
	}
	oc := rep.OutOfCore
	if !oc.Identical {
		t.Fatalf("out-of-core graph not identical to in-core: %+v", oc)
	}
	if oc.SpillRuns <= 0 || oc.SpilledBytes <= 0 || oc.MergePasses <= 0 {
		t.Errorf("out-of-core path did not spill: %+v", oc)
	}
	if oc.RunBufferBytes >= oc.TableBytes {
		t.Errorf("run buffer %d not smaller than the table %d it replaces", oc.RunBufferBytes, oc.TableBytes)
	}
	if oc.InCoreNsPerKmer <= 0 || oc.OutOfCoreNsPerKmer <= 0 || oc.Overhead <= 0 {
		t.Errorf("out-of-core comparison not measured: %+v", oc)
	}
	if _, err := json.MarshalIndent(rep, "", "  "); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerClampDegraded pins the honesty contract of satellite reruns on
// small hosts: requested workers beyond GOMAXPROCS are clamped, recorded as
// both figures, and flagged degraded — the report can never claim
// parallelism the scheduler did not provide.
func TestWorkerClampDegraded(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(2)
	if eff, deg := effectiveWorkers(8); eff != 2 || !deg {
		t.Errorf("effectiveWorkers(8) at GOMAXPROCS=2 = (%d, %v), want (2, true)", eff, deg)
	}
	if eff, deg := effectiveWorkers(1); eff != 1 || deg {
		t.Errorf("effectiveWorkers(1) at GOMAXPROCS=2 = (%d, %v), want (1, false)", eff, deg)
	}
	if eff, deg := effectiveWorkers(2); eff != 2 || deg {
		t.Errorf("effectiveWorkers(2) at GOMAXPROCS=2 = (%d, %v), want (2, false)", eff, deg)
	}
}

// TestSingleProcGuard is the regression guard for the counters satellite:
// at GOMAXPROCS=1, every Inserter handle shares one metrics shard, so the
// bench must flag the fast path and clamp all parallel parts to one worker.
func TestSingleProcGuard(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	runtime.GOMAXPROCS(1)

	ctr, err := measureCounters(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !ctr.SingleProcFastPath {
		t.Error("single_proc_fast_path not flagged at GOMAXPROCS=1")
	}
	if ctr.EffectiveWorkers != 1 || !ctr.Degraded {
		t.Errorf("counters at GOMAXPROCS=1: effective=%d degraded=%v, want 1/true",
			ctr.EffectiveWorkers, ctr.Degraded)
	}
	tb, err := measureTableBackends(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Runs {
		if r.EffectiveWorkers != 1 {
			t.Errorf("%s/%dw: effective workers %d at GOMAXPROCS=1", r.Backend, r.RequestedWorkers, r.EffectiveWorkers)
		}
		if r.RequestedWorkers > 1 && !r.Degraded {
			t.Errorf("%s/%dw: clamped run not flagged degraded", r.Backend, r.RequestedWorkers)
		}
	}
}

func TestSkewedPartitionShape(t *testing.T) {
	cfg := tinyConfig()
	sks, kmers := skewedPartition(cfg, 27)
	if len(sks) != cfg.smallSks+cfg.giantSks {
		t.Fatalf("partition has %d superkmers", len(sks))
	}
	var giantKmers int64
	for _, sk := range sks {
		if n := int64(sk.NumKmers(27)); n >= int64(cfg.giantLen) {
			giantKmers += n
		}
	}
	// The giants must dominate the k-mer mass, or the split comparison
	// would measure nothing.
	if 2*giantKmers < kmers {
		t.Fatalf("giants hold %d of %d kmers; partition not skewed", giantKmers, kmers)
	}
}
