package exps

import (
	"fmt"
	"math"

	"parahash/internal/core"
	"parahash/internal/costmodel"
	"parahash/internal/fastq"
	"parahash/internal/hashtable"
	"parahash/internal/simulate"
)

// buildWith runs ParaHash on the given reads with a processor
// configuration, returning the run stats.
func buildWith(reads []fastq.Read, p simulate.Profile, opts Options,
	useCPU bool, gpus int, medium costmodel.Medium) (core.Stats, error) {
	cfg := experimentConfig(p, opts)
	cfg.UseCPU = useCPU
	cfg.NumGPUs = gpus
	cfg.Medium = medium
	cfg.KeepSubgraphs = false
	res, err := core.Build(reads, cfg)
	if err != nil {
		return core.Stats{}, err
	}
	return res.Stats, nil
}

// Fig11 regenerates Fig. 11: the workload distribution across co-processing
// devices — elapsed compute per processor, and measured vs ideal workload
// shares — for both steps (Chr14, CPU + 2 GPUs).
func Fig11(opts Options) (Report, error) {
	reads, p, err := chr14Reads(opts)
	if err != nil {
		return Report{}, err
	}
	stats, err := buildWith(reads, p, opts, true, 2, costmodel.MediumMemCached)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		ID:     "fig11",
		Title:  "Workload distribution with co-processing (Chr14, CPU+2GPU)",
		Header: []string{"Step", "Processor", "Busy (s)", "Partitions", "Real share", "Ideal share"},
	}
	var worstGap [2]float64
	for si, st := range []core.StepStats{stats.Step1, stats.Step2} {
		shares := st.WorkloadShares()
		ideal := st.IdealShares()
		for i, name := range st.ProcessorNames {
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("Step %d", si+1),
				name,
				fs(st.ProcessorBusy[i]),
				fmt.Sprintf("%d", st.ProcessorParts[i]),
				fs(shares[i]),
				fs(ideal[i]),
			})
			if gap := math.Abs(shares[i] - ideal[i]); gap > worstGap[si] {
				worstGap[si] = gap
			}
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"max |real-ideal| share gap: Step1 %.3f, Step2 %.3f (paper: hashing matches ideal more closely)",
		worstGap[0], worstGap[1]))
	return rep, nil
}

// Fig12 regenerates Fig. 12: the stage time breakdown without pipelining
// (Input + Compute + Output, stacked) against the pipelined elapsed time,
// for both steps and both datasets.
func Fig12(opts Options) (Report, error) {
	rep := Report{
		ID:    "fig12",
		Title: "Pipelining: sequential stage sum vs pipelined elapsed",
		Header: []string{"Dataset", "Step", "Input (s)", "Compute (s)", "Output (s)",
			"No-pipeline (s)", "Pipelined (s)", "Saving"},
	}
	type ds struct {
		name   string
		get    func(Options) ([]fastq.Read, simulate.Profile, error)
		medium costmodel.Medium
	}
	for _, d := range []ds{
		{"Chr14", chr14Reads, costmodel.MediumMemCached},
		{"Bumblebee", bumblebeeReads, costmodel.MediumDisk},
	} {
		reads, p, err := d.get(opts)
		if err != nil {
			return Report{}, err
		}
		stats, err := buildWith(reads, p, opts, true, 2, d.medium)
		if err != nil {
			return Report{}, err
		}
		for si, st := range []core.StepStats{stats.Step1, stats.Step2} {
			var compute float64
			for _, b := range st.ProcessorBusy {
				compute += b
			}
			saving := 1 - st.Seconds/st.NonPipelinedSeconds
			rep.Rows = append(rep.Rows, []string{
				d.name,
				fmt.Sprintf("Step %d", si+1),
				fs(st.InputSeconds),
				fs(compute),
				fs(st.OutputSeconds),
				fs(st.NonPipelinedSeconds),
				fs(st.Seconds),
				fmt.Sprintf("%.0f%%", 100*saving),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"paper shape: pipelining helps when IO does not dominate (Chr14) and roughly halves elapsed when it does (Bumblebee)")
	return rep, nil
}

// processorSweep is the configuration axis of Figs. 13 and 14.
var processorSweep = []struct {
	name   string
	useCPU bool
	gpus   int
}{
	{"CPU", true, 0},
	{"1GPU", false, 1},
	{"2GPU", false, 2},
	{"CPU+1GPU", true, 1},
	{"CPU+2GPU", true, 2},
}

// modelComparison runs the processor sweep on a dataset/medium and compares
// measured step times against the Eq. (1)/(2) estimates.
func modelComparison(id, title string, reads []fastq.Read, p simulate.Profile,
	opts Options, medium costmodel.Medium) (Report, error) {
	rep := Report{
		ID:    id,
		Title: title,
		Header: []string{"Config",
			"Step1 real (s)", "Step1 est (s)",
			"Step2 real (s)", "Step2 est (s)"},
	}
	runs := make(map[string]core.Stats, len(processorSweep))
	for _, pc := range processorSweep {
		st, err := buildWith(reads, p, opts, pc.useCPU, pc.gpus, medium)
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", pc.name, err)
		}
		runs[pc.name] = st
	}

	estimate := func(step int, pc struct {
		name   string
		useCPU bool
		gpus   int
	}) float64 {
		pick := func(s core.Stats) core.StepStats {
			if step == 1 {
				return s.Step1
			}
			return s.Step2
		}
		cpuSolo := pick(runs["CPU"]).Seconds
		gpuSolo := pick(runs["1GPU"]).Seconds
		var tCPU, tGPU float64
		if pc.useCPU {
			tCPU = cpuSolo
		}
		if pc.gpus > 0 {
			tGPU = gpuSolo
		}
		ideal := costmodel.EstimateCoprocessingSeconds(tCPU, tGPU, pc.gpus)
		// Under Case 2 the estimate is IO-bound (Eq. 1 / §IV-B Case 2).
		st := pick(runs[pc.name])
		ioEst := costmodel.EstimateIOBoundSeconds(st.InputSeconds, st.OutputSeconds, st.Partitions)
		if medium == costmodel.MediumDisk && ioEst > ideal {
			return ioEst
		}
		return ideal
	}

	var maxErr float64
	for _, pc := range processorSweep {
		st := runs[pc.name]
		e1, e2 := estimate(1, pc), estimate(2, pc)
		rep.Rows = append(rep.Rows, []string{
			pc.name,
			fs(st.Step1.Seconds), fs(e1),
			fs(st.Step2.Seconds), fs(e2),
		})
		for _, pair := range [][2]float64{{st.Step1.Seconds, e1}, {st.Step2.Seconds, e2}} {
			if pair[1] > 0 {
				if rel := math.Abs(pair[0]-pair[1]) / pair[1]; rel > maxErr {
					maxErr = rel
				}
			}
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"max relative error real-vs-estimate: %.0f%% (paper: real tracks the model's shape)", 100*maxErr))
	return rep, nil
}

// Fig13 regenerates Fig. 13: real vs estimated elapsed time under Case 1
// (T_I/O << min{T_CPU, T_GPU}): Human Chr14 from a memory-cached file.
func Fig13(opts Options) (Report, error) {
	reads, p, err := chr14Reads(opts)
	if err != nil {
		return Report{}, err
	}
	return modelComparison("fig13",
		"Real vs estimated, Case 1: T_I/O << min (Chr14, mem-cached)",
		reads, p, opts, costmodel.MediumMemCached)
}

// Fig14 regenerates Fig. 14: real vs estimated elapsed time under Case 2
// (T_I/O > max{T_CPU, T_GPU}): Bumblebee from disk.
func Fig14(opts Options) (Report, error) {
	reads, p, err := bumblebeeReads(opts)
	if err != nil {
		return Report{}, err
	}
	return modelComparison("fig14",
		"Real vs estimated, Case 2: T_I/O > max (Bumblebee, disk)",
		reads, p, opts, costmodel.MediumDisk)
}

// Contention regenerates the §III/§V-C1 claim that the state-transfer
// mechanism reduces key locking by ~80%: with duplicates ~5x distinct
// vertices, only the first touch of each vertex locks.
func Contention(opts Options) (Report, error) {
	reads, p, err := chr14Reads(opts)
	if err != nil {
		return Report{}, err
	}
	cfg := experimentConfig(p, opts)
	parts, err := core.PartitionSuperkmers(reads, cfg)
	if err != nil {
		return Report{}, err
	}
	var locked, lockFree, kmers int64
	for _, sks := range parts {
		var pk int64
		for _, sk := range sks {
			pk += int64(sk.NumKmers(cfg.K))
		}
		if pk == 0 {
			continue
		}
		table, err := constructTable(sks, cfg.K, hashtable.SizeForKmers(pk, cfg.Lambda, cfg.Alpha))
		if err != nil {
			return Report{}, err
		}
		m := table.Metrics().Snapshot()
		locked += m.Inserts
		lockFree += m.Updates
		kmers += pk
	}
	reduction := float64(lockFree) / float64(locked+lockFree)
	rep := Report{
		ID:     "contention",
		Title:  "State-transfer lock reduction (Chr14)",
		Header: []string{"Metric", "Value"},
		Rows: [][]string{
			{"k-mer accesses", fmt.Sprintf("%d", kmers)},
			{"locked inserts (distinct vertices)", fmt.Sprintf("%d", locked)},
			{"lock-free updates (duplicates)", fmt.Sprintf("%d", lockFree)},
			{"lock reduction", fmt.Sprintf("%.1f%%", 100*reduction)},
		},
	}
	rep.Notes = append(rep.Notes,
		"paper: duplicates are ~5/6 of accesses, so partial locking removes ~80% of key locks")
	return rep, nil
}
