package msp

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"parahash/internal/dna"
)

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	var want []Superkmer
	for i := 0; i < 200; i++ {
		n := 27 + rng.Intn(80)
		sk := Superkmer{Bases: randomRead(rng, n)}
		if rng.Intn(2) == 1 {
			sk.HasLeft, sk.Left = true, dna.Base(rng.Intn(4))
		}
		if rng.Intn(2) == 1 {
			sk.HasRight, sk.Right = true, dna.Base(rng.Intn(4))
		}
		want = append(want, sk)
		if err := enc.Encode(sk); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf)
	for i, w := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if dna.DecodeSeq(got.Bases) != dna.DecodeSeq(w.Bases) {
			t.Fatalf("record %d: bases differ", i)
		}
		if got.HasLeft != w.HasLeft || got.HasRight != w.HasRight ||
			(got.HasLeft && got.Left != w.Left) || (got.HasRight && got.Right != w.Right) {
			t.Fatalf("record %d: extensions differ: %+v vs %+v", i, got, w)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestEncodedSizeMatchesActual(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{27, 28, 29, 30, 31, 100, 1000} {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		sk := Superkmer{Bases: randomRead(rng, n), HasLeft: true, Left: dna.C}
		if err := enc.Encode(sk); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != EncodedSize(n) {
			t.Errorf("n=%d: actual %d bytes, EncodedSize says %d", n, buf.Len(), EncodedSize(n))
		}
		if enc.Bytes != int64(buf.Len()) {
			t.Errorf("n=%d: Bytes counter %d, want %d", n, enc.Bytes, buf.Len())
		}
	}
}

func TestEncodingQuartersStorage(t *testing.T) {
	// The paper: encoded output is ~1/4 of the plain representation.
	n := 101
	enc, plain := EncodedSize(n), PlainEncodedSize(n)
	ratio := float64(enc) / float64(plain)
	if ratio > 0.35 {
		t.Errorf("encoded/plain = %.2f, want <= ~0.27", ratio)
	}
}

func TestDecoderCorruptStream(t *testing.T) {
	cases := [][]byte{
		{0x80}, // unterminated varint
		{5},    // length without flags
		{5, 0}, // flags but truncated payload
		append([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}, 0), // implausible length
	}
	for i, in := range cases {
		dec := NewDecoder(bytes.NewReader(in))
		_, err := dec.Next()
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// A leading zero byte is the integrity footer marker; a stream that
	// ends inside the footer is integrity-corrupt, not structurally so.
	dec := NewDecoder(bytes.NewReader([]byte{0, 0}))
	if _, err := dec.Next(); !errors.Is(err, ErrCorruptPartition) {
		t.Errorf("truncated footer: err = %v, want ErrCorruptPartition", err)
	}
}

func TestDecoderEmptyStream(t *testing.T) {
	dec := NewDecoder(bytes.NewReader(nil))
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestPartitionWriterRoutesAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	k, p, np := 27, 9, 8
	bufs := make([]*bytes.Buffer, np)
	w, err := NewPartitionWriter(k, np, func(i int) (io.WriteCloser, error) {
		bufs[i] = &bytes.Buffer{}
		return nopCloser{bufs[i]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	sc := &Scanner{K: k, P: p}
	var scratch []Superkmer
	totalKmers := 0
	for i := 0; i < 100; i++ {
		read := randomRead(rng, 101)
		totalKmers += len(read) - k + 1
		if scratch, err = w.WriteRead(sc, read, scratch); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	stats := w.Stats()
	summary := SummarizeStats(stats)
	if summary.TotalKmers != int64(totalKmers) {
		t.Errorf("stats kmers = %d, want %d", summary.TotalKmers, totalKmers)
	}

	// Decode every partition; every record must decode cleanly and the
	// total superkmer count must match stats.
	decoded := int64(0)
	for i := 0; i < np; i++ {
		dec := NewDecoder(bufs[i])
		for {
			_, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("partition %d: %v", i, err)
			}
			decoded++
		}
	}
	if decoded != summary.TotalSuperkmers {
		t.Errorf("decoded %d superkmers, stats say %d", decoded, summary.TotalSuperkmers)
	}
}

func TestPartitionWriterDuplicatesSamePartition(t *testing.T) {
	// Two occurrences of the same sequence (one reverse-complemented) must
	// produce superkmers landing in identical partitions.
	rng := rand.New(rand.NewSource(43))
	k, p, np := 27, 9, 16
	read := randomRead(rng, 101)
	rc := make([]dna.Base, len(read))
	copy(rc, read)
	dna.ReverseComplementSeq(rc)

	part := func(r []dna.Base) map[int]int {
		m := make(map[int]int)
		for _, sk := range SuperkmersFromRead(nil, r, k, p) {
			m[Partition(sk.Minimizer, np)] += sk.NumKmers(k)
		}
		return m
	}
	a, b := part(read), part(rc)
	if len(a) != len(b) {
		t.Fatalf("partition key sets differ: %v vs %v", a, b)
	}
	for idx, n := range a {
		if b[idx] != n {
			t.Fatalf("partition %d: %d vs %d kmers", idx, n, b[idx])
		}
	}
}

func TestNewPartitionWriterErrors(t *testing.T) {
	if _, err := NewPartitionWriter(27, 0, nil); err == nil {
		t.Error("np=0 accepted")
	}
	boom := errors.New("boom")
	_, err := NewPartitionWriter(27, 4, func(i int) (io.WriteCloser, error) {
		if i == 2 {
			return nil, boom
		}
		return nopCloser{&bytes.Buffer{}}, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("open error not propagated: %v", err)
	}
}

func TestSummarizeStatsEmpty(t *testing.T) {
	s := SummarizeStats(nil)
	if s.TotalKmers != 0 || s.KmerVariance != 0 {
		t.Errorf("empty summary should be zero: %+v", s)
	}
}

func TestSummarizeStatsVariance(t *testing.T) {
	stats := []PartitionStats{{Kmers: 10}, {Kmers: 20}, {Kmers: 30}}
	s := SummarizeStats(stats)
	if s.MeanKmers != 20 {
		t.Errorf("mean = %f", s.MeanKmers)
	}
	if s.KmerVariance != 200.0/3.0 {
		t.Errorf("variance = %f", s.KmerVariance)
	}
	if s.MaxKmers != 30 {
		t.Errorf("max = %d", s.MaxKmers)
	}
}

func BenchmarkSuperkmerGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	read := randomRead(rng, 101)
	sc := &Scanner{K: 27, P: 11}
	var scratch []Superkmer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scratch = sc.Superkmers(scratch[:0], read)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	sk := Superkmer{Bases: randomRead(rng, 40), HasLeft: true, HasRight: true}
	enc := NewEncoder(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(sk); err != nil {
			b.Fatal(err)
		}
	}
}
