package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file adds the fault-tolerant variant of Run. The paper's pipeline is
// all-or-nothing: the first error from any stage aborts the whole build,
// discarding every completed partition. Real heterogeneous deployments lose
// processors mid-run and hit transient IO faults routinely, and ParaHash's
// partition-granular construction makes per-partition recovery cheap: a
// failed partition can simply be re-read or re-hashed, and a failed
// processor's partitions re-queued onto the survivors. RunResilient
// implements exactly that policy, plus three governors:
//
//   - cancellation: the run's context cancels promptly and leak-free — no
//     new stage attempt starts, condition waits wake, and every pipeline
//     goroutine exits before RunResilient returns;
//   - a watchdog: Policy.AttemptTimeout bounds each work-stage attempt in
//     wall-clock time, and an expired attempt is abandoned and treated as an
//     ordinary worker fault, feeding the existing retry/quarantine machinery
//     (a hung device kernel must not hang the whole build);
//   - admission control: Policy.Admission gates each partition's predicted
//     working-set bytes through a weighted semaphore, so concurrent
//     residency queues under a memory budget instead of OOMing.

// ErrNoHealthyWorkers reports that every worker was quarantined before the
// run completed; the partitions that were not yet produced fail with it.
var ErrNoHealthyWorkers = errors.New("pipeline: all workers quarantined")

// ErrAttemptTimeout reports a work-stage attempt the watchdog abandoned
// because it exceeded Policy.AttemptTimeout. It counts as an ordinary worker
// fault: the partition is retried (possibly on another processor) and the
// worker's consecutive-failure count advances toward quarantine.
var ErrAttemptTimeout = errors.New("pipeline: partition attempt deadline exceeded")

// Policy configures RunResilient's fault handling. The zero value retries
// nothing and never quarantines, making RunResilient behave like Run except
// that it aggregates every partition error instead of stopping at the first.
type Policy struct {
	// MaxAttempts is the per-partition attempt budget per stage (read,
	// work, write). 1 — and, normalised, anything below 1 — means fail
	// fast: no retries.
	MaxAttempts int
	// QuarantineAfter quarantines a worker once its consecutive-failure
	// count reaches this threshold: the worker stops claiming partitions
	// and its last partition is re-queued onto the survivors without
	// charging the partition's attempt budget (the fault is the
	// processor's, not the partition's). 0 disables quarantine.
	QuarantineAfter int
	// BackoffSeconds is the virtual-time backoff charged before retry k of
	// a partition: BackoffSeconds * 2^(k-1). It is accounting only — no
	// goroutine sleeps — so runs stay deterministic and host-independent.
	BackoffSeconds float64
	// BackoffJitter spreads each retry's backoff by a uniformly drawn
	// factor in [1-BackoffJitter, 1+BackoffJitter]. Without jitter, N
	// concurrent builds retrying a shared-store fault back off in lockstep
	// and re-collide as a thundering herd; with it their retry schedules
	// decorrelate. Must be in [0, 1]; 0 keeps the exact exponential
	// schedule. Draws come from a generator seeded by BackoffJitterSeed, so
	// a given (seed, fault sequence) charges a reproducible backoff total.
	BackoffJitter float64
	// BackoffJitterSeed seeds the jitter stream; two runs with the same
	// seed and fault sequence charge identical backoff, two runs with
	// different seeds decorrelate.
	BackoffJitterSeed int64
	// Retryable classifies read- and write-stage errors; a non-retryable
	// error fails the partition immediately without burning retries.
	// Worker errors are always eligible for retry because another
	// (heterogeneous) worker may well succeed where this one failed.
	// nil treats every error as retryable.
	Retryable func(error) bool

	// AttemptTimeout is the watchdog deadline for one work-stage attempt in
	// wall-clock time; 0 disables the watchdog. An expired attempt is
	// abandoned (its context is canceled, so cooperative workers return
	// promptly) and charged as a worker fault wrapping ErrAttemptTimeout.
	AttemptTimeout time.Duration
	// Admission, when non-nil, is the memory-budget gate each partition
	// must pass before its read stage loads it: admitted before read,
	// released when the partition reaches a terminal state (written or
	// permanently failed). Reads are sequential, so admission order equals
	// write order and the gate can never deadlock the in-order writer.
	Admission *Gate
	// AdmissionWeight returns a partition's admission weight in bytes
	// (typically its Property-1 predicted hash table footprint). nil
	// weights every partition 1 byte. Ignored without Admission.
	AdmissionWeight func(i int) int64
}

// PartitionError records one failed attempt at one partition. Recovered
// attempts appear in Report.Faults; permanent failures are additionally
// joined into RunResilient's returned error.
type PartitionError struct {
	// Partition is the partition index.
	Partition int
	// Stage is "read", "work" or "write".
	Stage string
	// Worker is the failing worker's index for stage "work", else -1.
	Worker int
	// Attempt is the 1-based attempt number that failed.
	Attempt int
	// Err is the underlying error.
	Err error
}

// Error implements error.
func (e *PartitionError) Error() string {
	if e.Stage == "work" {
		return fmt.Sprintf("pipeline: worker %d on partition %d (attempt %d): %v",
			e.Worker, e.Partition, e.Attempt, e.Err)
	}
	return fmt.Sprintf("pipeline: %s partition %d (attempt %d): %v",
		e.Stage, e.Partition, e.Attempt, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *PartitionError) Unwrap() error { return e.Err }

// Report summarises a resilient run for degraded-mode accounting.
type Report struct {
	// Assignment is the worker that produced each partition (-1 if the
	// partition was never produced).
	Assignment []int
	// Written marks each partition whose write stage succeeded — i.e. its
	// output is durably committed through the write closure. On a partial
	// failure it tells callers exactly which partitions' outputs survive
	// (e.g. which a checkpointed build may later resume from).
	Written []bool
	// Retries counts failed attempts that were retried (read, work and
	// write stages combined).
	Retries int
	// Requeues counts partitions re-queued for free because their worker
	// was quarantined mid-partition.
	Requeues int
	// Quarantined lists quarantined worker indices in quarantine order.
	Quarantined []int
	// BackoffSeconds is the total virtual backoff charged across retries.
	BackoffSeconds float64
	// Faults records every failed attempt, including ones that later
	// recovered.
	Faults []PartitionError
	// FailedPartitions lists permanently failed partitions, sorted.
	FailedPartitions []int

	// WatchdogKills counts work-stage attempts the watchdog abandoned
	// because they exceeded Policy.AttemptTimeout.
	WatchdogKills int
	// Canceled reports that the run was cut short by its context; Written
	// still marks exactly the partitions whose outputs were committed.
	Canceled bool
	// CanceledAttempts counts stage attempts cut short by cancellation
	// (their partitions are not charged a failed attempt).
	CanceledAttempts int
	// Admission summarises the memory-budget gate's work (zero without
	// Policy.Admission).
	Admission GateStats
}

// runState is the shared mutable state of one RunResilient invocation,
// guarded by mu.
type runState struct {
	mu   sync.Mutex
	cond *sync.Cond

	queue       []int   // partitions ready for a worker to claim
	produced    []bool  // partition has an output
	failed      []error // permanent per-partition failure
	attempts    []int   // charged failed attempts per partition
	consec      []int   // consecutive failures per worker
	quarantined []bool
	healthy     int
	abandoned   bool // all workers quarantined
	canceled    bool // the run context was canceled
	writerDone  bool

	admitted []bool // partition holds an admission grant
	released []bool // partition's grant was returned
	weights  []int64

	pol         Policy
	maxAttempts int
	jitter      *rand.Rand // nil when BackoffJitter == 0
	rep         *Report
}

// chargeRetryLocked books one retried attempt and its exponential virtual
// backoff, spread by the seeded jitter factor when the policy asks for one.
// attempt is the 1-based attempt that just failed.
func (st *runState) chargeRetryLocked(attempt int) {
	st.rep.Retries++
	backoff := st.pol.BackoffSeconds * float64(int64(1)<<uint(attempt-1))
	if st.jitter != nil {
		backoff *= 1 + st.pol.BackoffJitter*(2*st.jitter.Float64()-1)
	}
	st.rep.BackoffSeconds += backoff
}

// failLocked marks a partition permanently failed (first failure wins) and
// returns its admission grant — a dead partition must not hold budget that
// live partitions are queueing for.
func (st *runState) failLocked(i int, err error) {
	if st.failed[i] == nil {
		st.failed[i] = err
	}
	st.releaseLocked(i)
}

// releaseLocked returns partition i's admission grant exactly once.
func (st *runState) releaseLocked(i int) {
	if st.pol.Admission == nil || !st.admitted[i] || st.released[i] {
		return
	}
	st.released[i] = true
	st.pol.Admission.Release(st.weights[i])
}

// abandonLocked fails every partition that has no output yet; called when
// the last healthy worker is quarantined. cause is the fault that retired
// the final worker, kept in the chain so callers can still errors.Is the
// underlying device error.
func (st *runState) abandonLocked(cause error) {
	st.abandoned = true
	for i := range st.failed {
		if !st.produced[i] && st.failed[i] == nil {
			st.failed[i] = fmt.Errorf("pipeline: partition %d: %w (last worker fault: %w)",
				i, ErrNoHealthyWorkers, cause)
			st.releaseLocked(i)
		}
	}
}

// RunResilient pipelines n partitions through the same three overlapped
// stages as Run — sequential read, work-stealing workers, sequential
// in-order write — but applies pol's fault-handling on top:
//
//   - a failed read or write is retried up to pol.MaxAttempts times with
//     deterministic virtual-time backoff;
//   - a failed worker attempt re-queues the partition (any worker may pick
//     it up) until the partition's attempt budget is exhausted;
//   - a work-stage attempt that outlives pol.AttemptTimeout is abandoned by
//     the watchdog and charged as a worker fault (wrapping
//     ErrAttemptTimeout), so a hung processor feeds the same retry and
//     quarantine machinery as a failing one;
//   - a worker whose consecutive-failure count reaches pol.QuarantineAfter
//     is quarantined — it stops claiming work and its partition is
//     re-queued for free, so the build degrades gracefully onto the
//     surviving processors and still succeeds with >= 1 healthy worker;
//   - each partition passes pol.Admission (when set) before its read stage,
//     bounding concurrent working-set bytes under the memory budget;
//   - permanently failed partitions do not abort the run: the remaining
//     partitions are still processed and written in order, and all
//     permanent errors are aggregated (errors.Join) into the returned
//     error;
//   - canceling ctx stops the run promptly and leak-free: in-flight stage
//     attempts are released via their attempt contexts, no new attempt
//     starts, already-written partitions stay committed (Report.Written),
//     and the returned error wraps the context's cause.
//
// The Report is always valid, even when an error is returned.
func RunResilient[I, O any](ctx context.Context, n int, read func(i int) (I, error), workers []Worker[I, O], write func(i int, o O) error, pol Policy) (Report, error) {
	return RunResilientTraced(ctx, n, read, workers, write, pol, nil)
}

// RunResilientTraced is RunResilient with an optional SpanRecorder
// observing every stage attempt (retries included); rec may be nil.
func RunResilientTraced[I, O any](ctx context.Context, n int, read func(i int) (I, error), workers []Worker[I, O], write func(i int, o O) error, pol Policy, rec SpanRecorder) (Report, error) {
	rep := Report{}
	if ctx == nil {
		ctx = context.Background()
	}
	if n < 0 {
		return rep, fmt.Errorf("pipeline: negative partition count %d", n)
	}
	if len(workers) == 0 {
		return rep, fmt.Errorf("pipeline: no workers")
	}
	rep.Assignment = make([]int, n)
	for i := range rep.Assignment {
		rep.Assignment[i] = -1
	}
	rep.Written = make([]bool, n)
	if n == 0 {
		return rep, nil
	}
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	if pol.BackoffJitter < 0 || pol.BackoffJitter > 1 {
		return rep, fmt.Errorf("pipeline: BackoffJitter=%g out of range [0,1]", pol.BackoffJitter)
	}
	retryable := pol.Retryable
	if retryable == nil {
		retryable = func(error) bool { return true }
	}
	weigh := pol.AdmissionWeight
	if weigh == nil {
		weigh = func(int) int64 { return 1 }
	}

	inputs := make([]I, n)
	outputs := make([]O, n)

	st := &runState{
		produced:    make([]bool, n),
		failed:      make([]error, n),
		attempts:    make([]int, n),
		consec:      make([]int, len(workers)),
		quarantined: make([]bool, len(workers)),
		healthy:     len(workers),
		admitted:    make([]bool, n),
		released:    make([]bool, n),
		weights:     make([]int64, n),
		pol:         pol,
		maxAttempts: pol.MaxAttempts,
		rep:         &rep,
	}
	if pol.BackoffJitter > 0 {
		// One seeded stream per run, consumed in retry order under st.mu, so
		// the charged total is a deterministic function of (seed, fault
		// sequence) while distinct seeds decorrelate concurrent builds.
		st.jitter = rand.New(rand.NewSource(pol.BackoffJitterSeed))
	}
	st.cond = sync.NewCond(&st.mu)

	// runCtx cancels with the caller's ctx, and additionally when the run
	// abandons (all workers quarantined) so an admission wait never blocks a
	// run that can no longer make progress.
	runCtx, runCancel := context.WithCancelCause(ctx)
	defer runCancel(nil)

	// The watcher translates the caller's cancellation into shared state and
	// wakes every condition wait. It watches the caller's ctx, not runCtx, so
	// an internal abandon is not misreported as a cancellation.
	watcherStop := make(chan struct{})
	var watcherWg sync.WaitGroup
	watcherWg.Add(1)
	go func() {
		defer watcherWg.Done()
		select {
		case <-ctx.Done():
			st.mu.Lock()
			st.canceled = true
			st.cond.Broadcast()
			st.mu.Unlock()
		case <-watcherStop:
		}
	}()

	var wg sync.WaitGroup

	// Stage 1: input. Reads partitions in order — acquiring each partition's
	// admission grant first — retrying transient faults; a permanently
	// unreadable partition is recorded and skipped.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			st.mu.Lock()
			if st.abandoned || st.canceled {
				st.mu.Unlock()
				return
			}
			st.weights[i] = weigh(i)
			w := st.weights[i]
			st.mu.Unlock()

			if pol.Admission != nil {
				if err := pol.Admission.Acquire(runCtx, w); err != nil {
					// Canceled or abandoned while queued; the loop exit above
					// records which on the next iteration's check — just stop.
					st.mu.Lock()
					if st.canceled {
						st.rep.CanceledAttempts++
					}
					st.mu.Unlock()
					return
				}
				st.mu.Lock()
				st.admitted[i] = true
				if st.abandoned || st.canceled {
					st.releaseLocked(i)
					st.mu.Unlock()
					return
				}
				st.mu.Unlock()
			}

			item, ok := func() (I, bool) {
				for attempt := 1; ; attempt++ {
					if runCtx.Err() != nil {
						st.mu.Lock()
						st.rep.CanceledAttempts++
						st.releaseLocked(i)
						st.mu.Unlock()
						var zero I
						return zero, false
					}
					start := time.Now()
					item, err := read(i)
					if rec != nil {
						rec.StageSpan(StageRead, i, -1, start, time.Now())
					}
					if err == nil {
						return item, true
					}
					st.mu.Lock()
					st.rep.Faults = append(st.rep.Faults,
						PartitionError{Partition: i, Stage: "read", Worker: -1, Attempt: attempt, Err: err})
					if attempt >= st.maxAttempts || !retryable(err) {
						st.failLocked(i, fmt.Errorf("pipeline: reading partition %d (attempt %d/%d): %w",
							i, attempt, st.maxAttempts, err))
						st.cond.Broadcast()
						st.mu.Unlock()
						var zero I
						return zero, false
					}
					st.chargeRetryLocked(attempt)
					st.mu.Unlock()
				}
			}()
			if !ok {
				st.mu.Lock()
				canceled := st.canceled
				st.mu.Unlock()
				if canceled {
					return
				}
				continue
			}
			st.mu.Lock()
			if st.abandoned || st.canceled {
				st.releaseLocked(i)
				st.mu.Unlock()
				return
			}
			inputs[i] = item
			st.queue = append(st.queue, i)
			st.cond.Broadcast()
			st.mu.Unlock()
		}
	}()

	// Stage 2: workers. Each claims queued partitions until quarantined or
	// the run completes. Failures re-queue the partition; crossing the
	// quarantine threshold retires the worker; the watchdog abandons
	// attempts that outlive pol.AttemptTimeout.
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				st.mu.Lock()
				for len(st.queue) == 0 && !st.writerDone && !st.quarantined[w] && !st.abandoned && !st.canceled {
					st.cond.Wait()
				}
				if st.writerDone || st.quarantined[w] || st.abandoned || st.canceled {
					st.mu.Unlock()
					return
				}
				id := st.queue[0]
				st.queue = st.queue[1:]
				st.mu.Unlock()

				start := time.Now()
				out, err := runAttempt(runCtx, pol.AttemptTimeout, workers[w], inputs[id])
				if rec != nil {
					rec.StageSpan(StageCompute, id, w, start, time.Now())
				}

				st.mu.Lock()
				if err == nil {
					st.consec[w] = 0
					outputs[id] = out
					st.produced[id] = true
					st.rep.Assignment[id] = w
					st.cond.Broadcast()
					st.mu.Unlock()
					continue
				}
				if runCtx.Err() != nil && !errors.Is(err, ErrAttemptTimeout) {
					// The run is being canceled (or abandoned); the aborted
					// attempt is not the partition's fault.
					st.rep.CanceledAttempts++
					st.mu.Unlock()
					return
				}
				attempt := st.attempts[id] + 1
				st.rep.Faults = append(st.rep.Faults,
					PartitionError{Partition: id, Stage: "work", Worker: w, Attempt: attempt, Err: err})
				if errors.Is(err, ErrAttemptTimeout) {
					st.rep.WatchdogKills++
				}
				st.consec[w]++
				if st.pol.QuarantineAfter > 0 && st.consec[w] >= st.pol.QuarantineAfter {
					st.quarantined[w] = true
					st.rep.Quarantined = append(st.rep.Quarantined, w)
					st.healthy--
					if st.healthy > 0 {
						// The processor is at fault, not the partition:
						// re-queue without charging its attempt budget.
						st.rep.Requeues++
						st.queue = append(st.queue, id)
					} else {
						st.abandonLocked(err)
						runCancel(ErrNoHealthyWorkers)
					}
					st.cond.Broadcast()
					st.mu.Unlock()
					return
				}
				st.attempts[id] = attempt
				if attempt >= st.maxAttempts {
					st.failLocked(id, fmt.Errorf("pipeline: worker %d on partition %d (attempt %d/%d): %w",
						w, id, attempt, st.maxAttempts, err))
				} else {
					st.chargeRetryLocked(attempt)
					st.queue = append(st.queue, id)
				}
				st.cond.Broadcast()
				st.mu.Unlock()
			}
		}(w)
	}

	// Stage 3: output. Writes produced partitions in order, skipping
	// permanently failed ones so one bad partition never blocks the rest.
	// Cancellation stops it before the next partition; the in-flight write
	// is allowed to finish so committed outputs are never half-published.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			st.mu.Lock()
			for !st.produced[i] && st.failed[i] == nil && !st.canceled {
				st.cond.Wait()
			}
			if st.canceled && !st.produced[i] {
				st.mu.Unlock()
				return
			}
			if st.failed[i] != nil {
				st.mu.Unlock()
				continue
			}
			out := outputs[i]
			st.mu.Unlock()

			for attempt := 1; ; attempt++ {
				if runCtx.Err() != nil {
					st.mu.Lock()
					st.rep.CanceledAttempts++
					st.mu.Unlock()
					return
				}
				start := time.Now()
				err := write(i, out)
				if rec != nil {
					rec.StageSpan(StageWrite, i, -1, start, time.Now())
				}
				if err == nil {
					st.mu.Lock()
					st.rep.Written[i] = true
					st.releaseLocked(i)
					st.mu.Unlock()
					break
				}
				st.mu.Lock()
				st.rep.Faults = append(st.rep.Faults,
					PartitionError{Partition: i, Stage: "write", Worker: -1, Attempt: attempt, Err: err})
				if attempt >= st.maxAttempts || !retryable(err) {
					st.failLocked(i, fmt.Errorf("pipeline: writing partition %d (attempt %d/%d): %w",
						i, attempt, st.maxAttempts, err))
					st.mu.Unlock()
					break
				}
				st.chargeRetryLocked(attempt)
				st.mu.Unlock()
			}
		}
		st.mu.Lock()
		st.writerDone = true
		st.cond.Broadcast()
		st.mu.Unlock()
	}()

	wg.Wait()
	close(watcherStop)
	watcherWg.Wait()

	// Return any grants still held (e.g. partitions admitted but never
	// reaching a terminal state before cancellation), so a shared gate is
	// left balanced.
	st.mu.Lock()
	for i := range st.admitted {
		st.releaseLocked(i)
	}
	canceled := st.canceled
	st.mu.Unlock()

	if pol.Admission != nil {
		rep.Admission = pol.Admission.Stats()
	}

	if canceled {
		rep.Canceled = true
		written := 0
		for _, w := range rep.Written {
			if w {
				written++
			}
		}
		return rep, fmt.Errorf("pipeline: run canceled after %d of %d partitions written: %w",
			written, n, context.Cause(ctx))
	}

	var errs []error
	for i, e := range st.failed {
		if e != nil {
			rep.FailedPartitions = append(rep.FailedPartitions, i)
			errs = append(errs, e)
		}
	}
	if len(errs) > 0 {
		return rep, fmt.Errorf("pipeline: %d of %d partitions failed: %w",
			len(errs), n, errors.Join(errs...))
	}
	return rep, nil
}

// runAttempt invokes one work-stage attempt under the watchdog: with a
// positive timeout the worker runs under a deadline context and is abandoned
// — its context canceled, its eventual result discarded — once the deadline
// expires. A worker that returns its own deadline error is normalised to the
// same ErrAttemptTimeout, so cooperative and abandoned expiries are
// indistinguishable to the fault accounting.
func runAttempt[I, O any](ctx context.Context, timeout time.Duration, worker Worker[I, O], item I) (O, error) {
	if timeout <= 0 {
		return worker(ctx, item)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type result struct {
		out O
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := worker(actx, item)
		ch <- result{out, err}
	}()
	var zero O
	select {
	case r := <-ch:
		if r.err != nil && ctx.Err() == nil && errors.Is(r.err, context.DeadlineExceeded) {
			return zero, fmt.Errorf("%w (after %v): %v", ErrAttemptTimeout, timeout, r.err)
		}
		return r.out, r.err
	case <-actx.Done():
		if ctx.Err() != nil {
			// The whole run is stopping, not just this attempt.
			return zero, context.Cause(ctx)
		}
		return zero, fmt.Errorf("%w (after %v)", ErrAttemptTimeout, timeout)
	}
}
