// Package faultinject provides deterministic, scripted fault plans for
// exercising the resilient pipeline: transient and persistent IO faults,
// served-byte corruption (wrappers around iosim.Store's fault hooks), and
// processor faults — a device.Processor that drops out mid-run or fails a
// scripted set of Step2 calls, modelling a GPU dying under load.
//
// Plans are deterministic: the same plan against the same input produces
// the same fault sequence, so degraded-mode builds remain reproducible and
// their recovered results can be compared byte-for-byte against fault-free
// runs.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"parahash/internal/device"
	"parahash/internal/fastq"
	"parahash/internal/iosim"
	"parahash/internal/msp"
)

// CrashEnv is the environment variable that arms a crash point for
// crash-resume testing. Its value is "<point>" or "<point>:<n>": the n-th
// (1-based, default 1) call to MaybeCrash with that point name kills the
// process abruptly — SIGKILL-style, with no deferred cleanup — so the
// durable store and manifest are exercised exactly as a power loss would.
//
//	PARAHASH_CRASH_POINT=step2.partition:3 parahash -profile tiny -checkpoint-dir ck
const CrashEnv = "PARAHASH_CRASH_POINT"

var (
	crashMu     sync.Mutex
	crashCounts = map[string]int{}
)

// MaybeCrash kills the process if the CrashEnv variable arms the named
// crash point and its hit count has been reached. With the variable unset
// (every production run) it is a cheap no-op. The kill is delivered as an
// uncatchable signal where the platform supports it, so no buffered state
// is flushed — only durably published files survive, which is the point.
func MaybeCrash(point string) {
	spec := os.Getenv(CrashEnv)
	if spec == "" {
		return
	}
	name, hit := spec, 1
	if i := strings.LastIndexByte(spec, ':'); i >= 0 {
		if n, err := strconv.Atoi(spec[i+1:]); err == nil && n > 0 {
			name, hit = spec[:i], n
		}
	}
	if name != point {
		return
	}
	crashMu.Lock()
	crashCounts[point]++
	fire := crashCounts[point] == hit
	crashMu.Unlock()
	if !fire {
		return
	}
	fmt.Fprintf(os.Stderr, "faultinject: crash point %q hit %d — killing process\n", point, hit)
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		_ = p.Kill() // SIGKILL on unix: no deferred functions, no flushes
	}
	os.Exit(137) // unreachable on unix; abrupt-exit fallback elsewhere
}

// StallEnv is the environment variable that arms a stall point for
// SIGINT/cancellation testing. Its value is "<point>" or "<point>:<n>": the
// n-th (1-based, default 1) call to MaybeStall with that point name blocks
// until the caller's context is canceled. Unlike CrashEnv's abrupt kill,
// this models a build that hangs mid-flight, so graceful-shutdown paths can
// be exercised deterministically from an e2e test.
//
//	PARAHASH_STALL_POINT=step2.partition:3 parahash -profile tiny -checkpoint-dir ck
const StallEnv = "PARAHASH_STALL_POINT"

var (
	stallMu     sync.Mutex
	stallCounts = map[string]int{}
)

// ResetStallCounts clears every stall point's hit counter, so in-process
// tests that arm the same point are isolated from each other.
func ResetStallCounts() {
	stallMu.Lock()
	stallCounts = map[string]int{}
	stallMu.Unlock()
}

// MaybeStall blocks until ctx is canceled if the StallEnv variable arms the
// named stall point and its hit count has been reached; it then returns
// ctx's error. With the variable unset (every production run) it is a cheap
// no-op returning nil.
func MaybeStall(ctx context.Context, point string) error {
	spec := os.Getenv(StallEnv)
	if spec == "" {
		return nil
	}
	name, hit := spec, 1
	if i := strings.LastIndexByte(spec, ':'); i >= 0 {
		if n, err := strconv.Atoi(spec[i+1:]); err == nil && n > 0 {
			name, hit = spec[:i], n
		}
	}
	if name != point {
		return nil
	}
	stallMu.Lock()
	stallCounts[point]++
	fire := stallCounts[point] == hit
	stallMu.Unlock()
	if !fire {
		return nil
	}
	fmt.Fprintf(os.Stderr, "faultinject: stall point %q hit %d — blocking until canceled\n", point, hit)
	<-ctx.Done()
	return ctx.Err()
}

// ErrInjected is the default error carried by scripted faults.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrProcessorDead is returned by every call to a processor that has
// dropped out.
var ErrProcessorDead = errors.New("faultinject: processor dropped out")

// StoreFault scripts one file's IO fault.
type StoreFault struct {
	// File is the store file name the fault attaches to.
	File string
	// Times is how many accesses fail (or serve corrupt bytes) before the
	// file recovers; negative means every access.
	Times int
	// Err is the injected error; nil selects ErrInjected. Ignored for
	// corruption faults.
	Err error
	// Corrupt, on a read fault, serves a bit-flipped copy instead of
	// failing the open — the integrity footer must catch it downstream.
	Corrupt bool
}

// ProcessorFault scripts one processor's misbehaviour.
type ProcessorFault struct {
	// Proc indexes the processor in the pipeline's device slice (0 is the
	// CPU when enabled, then the GPUs).
	Proc int
	// DieAfter kills the processor permanently after this many successful
	// Step1/Step2 calls: every later call returns ErrProcessorDead.
	// 0 (the zero value) disables the drop-out; use DeadOnArrival for a
	// processor that never works.
	DieAfter int
	// DeadOnArrival makes every call fail with ErrProcessorDead from the
	// start.
	DeadOnArrival bool
	// FailStep2Calls lists 0-based Step2 call indices that fail once each
	// with Err, modelling sporadic per-partition kernel failures.
	FailStep2Calls []int
	// HangStep2Calls lists 0-based Step2 call indices that hang — blocking
	// on the call's context until it is canceled — modelling a wedged
	// kernel the pipeline watchdog must abandon. Each listed call hangs
	// once.
	HangStep2Calls []int
	// Err overrides the injected error for FailStep2Calls; nil selects
	// ErrInjected.
	Err error
}

// Plan is a complete scripted fault scenario.
type Plan struct {
	// ReadFaults and WriteFaults script store-level IO faults.
	ReadFaults, WriteFaults []StoreFault
	// ProcessorFaults script compute-device faults.
	ProcessorFaults []ProcessorFault
}

// ApplyStore installs the plan's IO faults on a store.
func (p Plan) ApplyStore(s *iosim.Store) {
	for _, f := range p.ReadFaults {
		if f.Corrupt {
			s.CorruptReadsNTimes(f.File, f.Times)
			continue
		}
		if f.Times < 0 {
			s.FailReadsOn(f.File, errOf(f.Err))
		} else {
			s.FailReadsNTimes(f.File, f.Times, errOf(f.Err))
		}
	}
	for _, f := range p.WriteFaults {
		if f.Times < 0 {
			s.FailWritesOn(f.File, errOf(f.Err))
		} else {
			s.FailWritesNTimes(f.File, f.Times, errOf(f.Err))
		}
	}
}

// WrapProcessors returns a copy of procs with the plan's processor faults
// wrapped around the scripted devices. Each call yields wrappers with fresh
// fault state, so a plan applied to both pipeline steps scripts each step
// independently.
func (p Plan) WrapProcessors(procs []device.Processor) []device.Processor {
	out := append([]device.Processor(nil), procs...)
	for _, f := range p.ProcessorFaults {
		if f.Proc < 0 || f.Proc >= len(out) {
			continue
		}
		out[f.Proc] = NewFlaky(out[f.Proc], f)
	}
	return out
}

func errOf(err error) error {
	if err == nil {
		return ErrInjected
	}
	return err
}

// Flaky wraps a device.Processor with scripted failures. It is safe for
// concurrent use, though the pipeline drives each processor from a single
// goroutine.
type Flaky struct {
	inner device.Processor
	err   error

	mu         sync.Mutex
	dieAfter   int // successful calls before drop-out; -1 = never
	successes  int
	step2Calls int
	failStep2  map[int]bool
	hangStep2  map[int]bool
}

var _ device.Processor = (*Flaky)(nil)

// NewFlaky builds the wrapper for one scripted processor fault.
func NewFlaky(p device.Processor, f ProcessorFault) *Flaky {
	fl := &Flaky{inner: p, err: errOf(f.Err), dieAfter: -1}
	if f.DeadOnArrival {
		fl.dieAfter = 0
	} else if f.DieAfter > 0 {
		fl.dieAfter = f.DieAfter
	}
	if len(f.FailStep2Calls) > 0 {
		fl.failStep2 = make(map[int]bool, len(f.FailStep2Calls))
		for _, c := range f.FailStep2Calls {
			fl.failStep2[c] = true
		}
	}
	if len(f.HangStep2Calls) > 0 {
		fl.hangStep2 = make(map[int]bool, len(f.HangStep2Calls))
		for _, c := range f.HangStep2Calls {
			fl.hangStep2[c] = true
		}
	}
	return fl
}

// Name implements device.Processor.
func (f *Flaky) Name() string { return f.inner.Name() }

// Kind implements device.Processor.
func (f *Flaky) Kind() device.Kind { return f.inner.Kind() }

// deadLocked reports whether the processor has dropped out.
func (f *Flaky) deadLocked() bool { return f.dieAfter >= 0 && f.successes >= f.dieAfter }

// Step1 implements device.Processor, honouring the drop-out script.
func (f *Flaky) Step1(ctx context.Context, reads []fastq.Read, k, p int) (device.Step1Output, error) {
	f.mu.Lock()
	if f.deadLocked() {
		f.mu.Unlock()
		return device.Step1Output{}, fmt.Errorf("%s step1: %w", f.inner.Name(), ErrProcessorDead)
	}
	f.mu.Unlock()
	out, err := f.inner.Step1(ctx, reads, k, p)
	if err == nil {
		f.mu.Lock()
		f.successes++
		f.mu.Unlock()
	}
	return out, err
}

// Step2 implements device.Processor, honouring the drop-out, per-call
// failure and hang scripts.
func (f *Flaky) Step2(ctx context.Context, sks []msp.Superkmer, k, tableSlots int) (device.Step2Output, error) {
	f.mu.Lock()
	call := f.step2Calls
	f.step2Calls++
	if f.deadLocked() {
		f.mu.Unlock()
		return device.Step2Output{}, fmt.Errorf("%s step2 (call %d): %w", f.inner.Name(), call, ErrProcessorDead)
	}
	if f.failStep2[call] {
		delete(f.failStep2, call)
		f.mu.Unlock()
		return device.Step2Output{}, fmt.Errorf("%s step2 (call %d): %w", f.inner.Name(), call, f.err)
	}
	if f.hangStep2[call] {
		delete(f.hangStep2, call)
		f.mu.Unlock()
		// A wedged kernel holds the attempt until the watchdog (or the run)
		// cancels the context; a cooperative hang keeps the test leak-free.
		<-ctx.Done()
		return device.Step2Output{}, fmt.Errorf("%s step2 (call %d): hang released: %w",
			f.inner.Name(), call, ctx.Err())
	}
	f.mu.Unlock()
	out, err := f.inner.Step2(ctx, sks, k, tableSlots)
	if err == nil {
		f.mu.Lock()
		f.successes++
		f.mu.Unlock()
	}
	return out, err
}
