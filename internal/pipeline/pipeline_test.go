package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunProcessesAllPartitionsInOrder(t *testing.T) {
	const n = 50
	read := func(i int) (int, error) { return i, nil }
	double := func(_ context.Context, x int) (int, error) { return 2 * x, nil }
	workers := []Worker[int, int]{double, double, double}

	var got []int
	write := func(i, o int) error {
		if o != 2*i {
			return fmt.Errorf("partition %d produced %d", i, o)
		}
		got = append(got, i)
		return nil
	}
	assignment, err := Run(context.Background(), n, read, workers, write)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("wrote %d partitions, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("output order broken at %d: %d", i, v)
		}
	}
	if len(assignment) != n {
		t.Fatalf("assignment has %d entries", len(assignment))
	}
	for i, w := range assignment {
		if w < 0 || w >= len(workers) {
			t.Fatalf("partition %d assigned to bogus worker %d", i, w)
		}
	}
}

func TestRunWorkStealing(t *testing.T) {
	// With multiple workers and enough partitions, more than one worker
	// should get work (they all steal from the same queue).
	const n = 200
	var perWorker [4]atomic.Int64
	workers := make([]Worker[int, int], 4)
	for w := range workers {
		w := w
		workers[w] = func(_ context.Context, x int) (int, error) {
			perWorker[w].Add(1)
			return x, nil
		}
	}
	_, err := Run(context.Background(), n, func(i int) (int, error) { return i, nil }, workers,
		func(i, o int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for w := range perWorker {
		total += perWorker[w].Load()
	}
	if total != n {
		t.Fatalf("workers processed %d partitions, want %d", total, n)
	}
}

func TestRunReadError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(context.Background(), 10,
		func(i int) (int, error) {
			if i == 3 {
				return 0, boom
			}
			return i, nil
		},
		[]Worker[int, int]{func(_ context.Context, x int) (int, error) { return x, nil }},
		func(i, o int) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("read error not surfaced: %v", err)
	}
}

func TestRunWorkerError(t *testing.T) {
	boom := errors.New("kaput")
	_, err := Run(context.Background(), 10,
		func(i int) (int, error) { return i, nil },
		[]Worker[int, int]{func(_ context.Context, x int) (int, error) {
			if x == 5 {
				return 0, boom
			}
			return x, nil
		}},
		func(i, o int) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("worker error not surfaced: %v", err)
	}
}

func TestRunWriteError(t *testing.T) {
	boom := errors.New("disk full")
	_, err := Run(context.Background(), 10,
		func(i int) (int, error) { return i, nil },
		[]Worker[int, int]{func(_ context.Context, x int) (int, error) { return x, nil }},
		func(i, o int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("write error not surfaced: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), -1, func(i int) (int, error) { return 0, nil },
		[]Worker[int, int]{func(_ context.Context, x int) (int, error) { return x, nil }},
		func(int, int) error { return nil }); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Run[int, int](context.Background(), 5, func(i int) (int, error) { return 0, nil }, nil,
		func(int, int) error { return nil }); err == nil {
		t.Error("no workers accepted")
	}
}

func TestRunZeroPartitions(t *testing.T) {
	_, err := Run(context.Background(), 0, func(i int) (int, error) { return i, nil },
		[]Worker[int, int]{func(_ context.Context, x int) (int, error) { return x, nil }},
		func(i, o int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAssignmentOnFailure(t *testing.T) {
	// An immediate read failure must leave every assignment entry at -1:
	// before the sentinel, untouched partitions were mis-attributed to
	// worker 0 (the zero value).
	boom := errors.New("boom")
	assignment, err := Run(context.Background(), 8,
		func(i int) (int, error) { return 0, boom },
		[]Worker[int, int]{func(_ context.Context, x int) (int, error) { return x, nil }},
		func(i, o int) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("read error not surfaced: %v", err)
	}
	for i, w := range assignment {
		if w != -1 {
			t.Errorf("partition %d attributed to worker %d on failure, want -1", i, w)
		}
	}
}

func TestRunPromptShutdown(t *testing.T) {
	// Once a stage has failed, a worker must stop at claim time — not fully
	// process the partition it claims next because srv already covers it.
	// read(2) fails after signalling; the sole worker holds partition 0
	// until the failure is guaranteed recorded, then must never run
	// partition 1.
	readFailed := make(chan struct{})
	var processed [3]atomic.Bool
	read := func(i int) (int, error) {
		if i == 2 {
			close(readFailed)
			return 0, errors.New("input torn")
		}
		return i, nil
	}
	worker := func(_ context.Context, x int) (int, error) {
		if x == 0 {
			<-readFailed
			// The failed flag is set by the reader after read returns; give
			// it time to land so the claim-time check is actually exercised.
			time.Sleep(50 * time.Millisecond)
		}
		processed[x].Store(true)
		return x, nil
	}
	_, err := Run(context.Background(), 3, read, []Worker[int, int]{worker},
		func(i, o int) error { return nil })
	if err == nil {
		t.Fatal("expected read failure")
	}
	if processed[1].Load() {
		t.Error("worker processed partition 1 after the pipeline had failed")
	}
}

// spanLog is a concurrency-safe SpanRecorder for tests.
type spanLog struct {
	mu    sync.Mutex
	spans []recordedSpan
}

type recordedSpan struct {
	stage             string
	partition, worker int
	start, end        time.Time
}

func (l *spanLog) StageSpan(stage string, partition, worker int, start, end time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spans = append(l.spans, recordedSpan{stage, partition, worker, start, end})
}

func TestRunTracedRecordsSpans(t *testing.T) {
	const n = 10
	var log spanLog
	_, err := RunTraced(context.Background(), n,
		func(i int) (int, error) { return i, nil },
		[]Worker[int, int]{func(_ context.Context, x int) (int, error) { return x, nil }},
		func(i, o int) error { return nil },
		&log)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string][]int{
		StageRead:    make([]int, n),
		StageCompute: make([]int, n),
		StageWrite:   make([]int, n),
	}
	for _, s := range log.spans {
		perPart, ok := counts[s.stage]
		if !ok {
			t.Fatalf("unknown stage %q", s.stage)
		}
		perPart[s.partition]++
		if s.end.Before(s.start) {
			t.Errorf("%s span of partition %d ends before it starts", s.stage, s.partition)
		}
		if s.stage == StageCompute {
			if s.worker != 0 {
				t.Errorf("compute span worker = %d, want 0", s.worker)
			}
		} else if s.worker != -1 {
			t.Errorf("%s span worker = %d, want -1", s.stage, s.worker)
		}
	}
	for stage, perPart := range counts {
		for i, c := range perPart {
			if c != 1 {
				t.Errorf("stage %s partition %d recorded %d spans, want 1", stage, i, c)
			}
		}
	}
}

func mkParts(n int, in, out float64, costs ...float64) []Partition {
	parts := make([]Partition, n)
	for i := range parts {
		cs := make([]float64, len(costs))
		copy(cs, costs)
		parts[i] = Partition{InputSeconds: in, OutputSeconds: out, ComputeSeconds: cs, WorkUnits: 1}
	}
	return parts
}

func TestSimulateSingleProcessor(t *testing.T) {
	// 4 partitions: input 1s, compute 2s, output 1s. Pipelined on one
	// processor: compute dominates; makespan = first input (1) + 4×2 + last
	// output (1) = 10.
	parts := mkParts(4, 1, 1, 2)
	s, err := Simulate(parts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Elapsed-10) > 1e-9 {
		t.Errorf("elapsed = %.2f, want 10", s.Elapsed)
	}
	if math.Abs(s.NonPipelinedElapsed-16) > 1e-9 {
		t.Errorf("non-pipelined = %.2f, want 16", s.NonPipelinedElapsed)
	}
}

func TestSimulateIOBound(t *testing.T) {
	// Input dominates: compute hides entirely inside input transfer.
	parts := mkParts(10, 5, 1, 0.5)
	s, err := Simulate(parts, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Makespan ≈ 10×5 + 0.5 + 1 = 51.5.
	if math.Abs(s.Elapsed-51.5) > 1e-9 {
		t.Errorf("elapsed = %.2f, want 51.5", s.Elapsed)
	}
	// Pipelining should save roughly the compute+output time (Fig. 12's
	// IO-dominated case saves half when in/out/compute are comparable).
	if s.NonPipelinedElapsed <= s.Elapsed {
		t.Error("pipelining should beat sequential stages")
	}
}

func TestSimulateFasterProcessorGetsMoreWork(t *testing.T) {
	// Processor 0 takes 4s per partition, processor 1 takes 1s: processor 1
	// should end up with ~4x the partitions (work-stealing balance).
	parts := mkParts(100, 0.01, 0.01, 4, 1)
	s, err := Simulate(parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcParts[1] <= 2*s.ProcParts[0] {
		t.Errorf("fast processor got %d parts vs slow %d; want ~4x", s.ProcParts[1], s.ProcParts[0])
	}
	shares := s.WorkloadShares()
	ideal := IdealShares([]float64{400, 100}) // solo times
	if math.Abs(shares[1]-ideal[1]) > 0.10 {
		t.Errorf("fast share %.2f, ideal %.2f", shares[1], ideal[1])
	}
}

func TestSimulateCoprocessingBeatsSolo(t *testing.T) {
	parts := mkParts(64, 0.01, 0.01, 1, 1)
	solo, err := Simulate(mkParts(64, 0.01, 0.01, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	duo, err := Simulate(parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	speedup := solo.Elapsed / duo.Elapsed
	if speedup < 1.8 || speedup > 2.05 {
		t.Errorf("2-processor speedup = %.2f, want ~2", speedup)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, 0); err == nil {
		t.Error("numProcs=0 accepted")
	}
	if _, err := Simulate(mkParts(1, 0, 0, 1), 2); err == nil {
		t.Error("cost arity mismatch accepted")
	}
}

func TestSimulateEmpty(t *testing.T) {
	s, err := Simulate(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Elapsed != 0 || s.NonPipelinedElapsed != 0 {
		t.Errorf("empty schedule: %+v", s)
	}
	if shares := s.WorkloadShares(); shares[0] != 0 || shares[1] != 0 {
		t.Error("empty shares should be zero")
	}
}

func TestIdealShares(t *testing.T) {
	shares := IdealShares([]float64{100, 50})
	if math.Abs(shares[0]-1.0/3) > 1e-9 || math.Abs(shares[1]-2.0/3) > 1e-9 {
		t.Errorf("shares = %v", shares)
	}
	zero := IdealShares([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("all-zero solo times should give zero shares")
	}
}

func TestSimulateStageSpans(t *testing.T) {
	parts := mkParts(20, 0.5, 0.3, 2, 1)
	s, err := Simulate(parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := len(parts)
	for _, arr := range [][]float64{s.InputStart, s.InputEnd, s.ComputeStart, s.ComputeEnd, s.OutputStart, s.OutputEnd} {
		if len(arr) != n {
			t.Fatalf("span array length %d, want %d", len(arr), n)
		}
	}
	for i := range parts {
		if s.InputEnd[i]-s.InputStart[i] != parts[i].InputSeconds {
			t.Errorf("partition %d input span %.2f, want %.2f", i,
				s.InputEnd[i]-s.InputStart[i], parts[i].InputSeconds)
		}
		if s.ComputeStart[i] < s.InputEnd[i] {
			t.Errorf("partition %d computed before its input landed", i)
		}
		want := parts[i].ComputeSeconds[s.Assignment[i]]
		if got := s.ComputeEnd[i] - s.ComputeStart[i]; math.Abs(got-want) > 1e-9 {
			t.Errorf("partition %d compute span %.2f, want %.2f", i, got, want)
		}
		if s.OutputStart[i] < s.ComputeEnd[i] {
			t.Errorf("partition %d written before it was produced", i)
		}
		if i > 0 && s.OutputStart[i] < s.OutputEnd[i-1] {
			t.Errorf("partition %d output overlaps partition %d", i, i-1)
		}
	}
	if s.OutputEnd[n-1] != s.Elapsed {
		t.Errorf("last output ends at %.2f, elapsed %.2f", s.OutputEnd[n-1], s.Elapsed)
	}
}

func TestSimulateDeterminism(t *testing.T) {
	parts := mkParts(50, 0.3, 0.2, 2, 1.5, 1.1)
	a, err := Simulate(parts, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(parts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed {
		t.Error("simulation not deterministic")
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("assignment not deterministic")
		}
	}
}
