package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// okWorker passes items through unchanged.
func okWorker(_ context.Context, x int) (int, error) { return x, nil }

func TestRunResilientFaultFreeMatchesRun(t *testing.T) {
	const n = 64
	var got []int
	rep, err := RunResilient(context.Background(), n,
		func(i int) (int, error) { return i, nil },
		[]Worker[int, int]{okWorker, okWorker, okWorker},
		func(i, o int) error {
			if o != i {
				return fmt.Errorf("partition %d produced %d", i, o)
			}
			got = append(got, i)
			return nil
		},
		Policy{MaxAttempts: 3, QuarantineAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("wrote %d partitions, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("output order broken at %d: %d", i, v)
		}
	}
	if rep.Retries != 0 || rep.Requeues != 0 || len(rep.Quarantined) != 0 || rep.BackoffSeconds != 0 {
		t.Errorf("fault-free run reported faults: %+v", rep)
	}
	for i, w := range rep.Assignment {
		if w < 0 || w >= 3 {
			t.Fatalf("partition %d assigned to bogus worker %d", i, w)
		}
	}
}

func TestRunResilientRetriesTransientRead(t *testing.T) {
	boom := errors.New("flaky disk")
	var failures atomic.Int64
	rep, err := RunResilient(context.Background(), 10,
		func(i int) (int, error) {
			if i == 4 && failures.Add(1) <= 2 {
				return 0, boom
			}
			return i, nil
		},
		[]Worker[int, int]{okWorker},
		func(i, o int) error { return nil },
		Policy{MaxAttempts: 3, BackoffSeconds: 0.5})
	if err != nil {
		t.Fatalf("transient read fault not recovered: %v", err)
	}
	if rep.Retries != 2 {
		t.Errorf("retries = %d, want 2", rep.Retries)
	}
	// Backoff doubles: 0.5 + 1.0.
	if rep.BackoffSeconds != 1.5 {
		t.Errorf("backoff = %v, want 1.5", rep.BackoffSeconds)
	}
	if len(rep.Faults) != 2 {
		t.Errorf("faults = %+v, want 2 recovered read faults", rep.Faults)
	}
}

// jitteredBackoffRun performs a run with scripted transient read faults on
// three partitions and returns the reported (virtual-time) backoff total.
func jitteredBackoffRun(t *testing.T, jitter float64, seed int64) float64 {
	t.Helper()
	var failures [10]atomic.Int64
	rep, err := RunResilient(context.Background(), 10,
		func(i int) (int, error) {
			if i%3 == 0 && failures[i].Add(1) <= 2 {
				return 0, errors.New("flaky disk")
			}
			return i, nil
		},
		[]Worker[int, int]{okWorker},
		func(i, o int) error { return nil },
		Policy{MaxAttempts: 3, BackoffSeconds: 0.5,
			BackoffJitter: jitter, BackoffJitterSeed: seed})
	if err != nil {
		t.Fatalf("transient faults not recovered: %v", err)
	}
	return rep.BackoffSeconds
}

func TestRunResilientBackoffJitter(t *testing.T) {
	// Four partitions (0,3,6,9) each retry twice: unjittered total is
	// 4 * (0.5 + 1.0) = 6.0 virtual seconds.
	const base = 6.0
	if got := jitteredBackoffRun(t, 0, 7); got != base {
		t.Fatalf("zero jitter changed backoff: got %v, want %v", got, base)
	}

	a := jitteredBackoffRun(t, 0.5, 1)
	b := jitteredBackoffRun(t, 0.5, 1)
	c := jitteredBackoffRun(t, 0.5, 2)
	if a != b {
		t.Errorf("same seed produced different backoff: %v vs %v", a, b)
	}
	if a == c {
		t.Errorf("different seeds produced identical backoff %v; jitter is not seeded", a)
	}
	// Every per-retry charge is scaled by a factor in [1-j, 1+j], so the
	// total must sit inside the same envelope around the deterministic sum.
	for _, got := range []float64{a, c} {
		if got < base*0.5 || got > base*1.5 {
			t.Errorf("jittered backoff %v outside envelope [%v, %v]", got, base*0.5, base*1.5)
		}
	}
	if a == base {
		t.Errorf("jitter 0.5 left backoff exactly at the deterministic total %v", base)
	}
}

func TestRunResilientBackoffJitterValidation(t *testing.T) {
	for _, j := range []float64{-0.1, 1.5} {
		_, err := RunResilient(context.Background(), 1,
			func(i int) (int, error) { return i, nil },
			[]Worker[int, int]{okWorker},
			func(i, o int) error { return nil },
			Policy{MaxAttempts: 2, BackoffJitter: j})
		if err == nil {
			t.Errorf("BackoffJitter=%g accepted, want validation error", j)
		}
	}
}

func TestRunResilientReadRetriesExhausted(t *testing.T) {
	boom := errors.New("dead disk")
	rep, err := RunResilient(context.Background(), 10,
		func(i int) (int, error) {
			if i == 3 {
				return 0, boom
			}
			return i, nil
		},
		[]Worker[int, int]{okWorker},
		func(i, o int) error { return nil },
		Policy{MaxAttempts: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("persistent read fault not surfaced: %v", err)
	}
	if len(rep.FailedPartitions) != 1 || rep.FailedPartitions[0] != 3 {
		t.Errorf("failed partitions = %v, want [3]", rep.FailedPartitions)
	}
}

func TestRunResilientNonRetryableFailsFast(t *testing.T) {
	fatal := errors.New("no such file")
	var reads atomic.Int64
	_, err := RunResilient(context.Background(), 4,
		func(i int) (int, error) {
			if i == 1 {
				reads.Add(1)
				return 0, fatal
			}
			return i, nil
		},
		[]Worker[int, int]{okWorker},
		func(i, o int) error { return nil },
		Policy{MaxAttempts: 5, Retryable: func(err error) bool { return !errors.Is(err, fatal) }})
	if !errors.Is(err, fatal) {
		t.Fatalf("non-retryable error not surfaced: %v", err)
	}
	if reads.Load() != 1 {
		t.Errorf("non-retryable read attempted %d times, want 1", reads.Load())
	}
}

func TestRunResilientWorkerErrorRetriedMidStream(t *testing.T) {
	boom := errors.New("kernel fault")
	var failed atomic.Bool
	worker := func(_ context.Context, x int) (int, error) {
		if x == 5 && !failed.Swap(true) {
			return 0, boom
		}
		return 2 * x, nil
	}
	var got []int
	rep, err := RunResilient(context.Background(), 10,
		func(i int) (int, error) { return i, nil },
		[]Worker[int, int]{worker},
		func(i, o int) error {
			if o != 2*i {
				return fmt.Errorf("partition %d produced %d", i, o)
			}
			got = append(got, i)
			return nil
		},
		Policy{MaxAttempts: 2})
	if err != nil {
		t.Fatalf("worker fault mid-stream not recovered: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("wrote %d partitions, want 10", len(got))
	}
	if rep.Retries != 1 {
		t.Errorf("retries = %d, want 1", rep.Retries)
	}
}

func TestRunResilientAggregatesAllPartitionErrors(t *testing.T) {
	boomA := errors.New("fault A")
	boomB := errors.New("fault B")
	var written atomic.Int64
	rep, err := RunResilient(context.Background(), 10,
		func(i int) (int, error) {
			switch i {
			case 2:
				return 0, boomA
			case 7:
				return 0, boomB
			}
			return i, nil
		},
		[]Worker[int, int]{okWorker},
		func(i, o int) error { written.Add(1); return nil },
		Policy{MaxAttempts: 1})
	if !errors.Is(err, boomA) || !errors.Is(err, boomB) {
		t.Fatalf("aggregated error missing a partition fault: %v", err)
	}
	if written.Load() != 8 {
		t.Errorf("healthy partitions written = %d, want 8", written.Load())
	}
	if len(rep.FailedPartitions) != 2 {
		t.Errorf("failed partitions = %v, want [2 7]", rep.FailedPartitions)
	}
}

func TestRunResilientWriteErrorAfterPartialOutput(t *testing.T) {
	boom := errors.New("disk full")
	var got []int
	rep, err := RunResilient(context.Background(), 10,
		func(i int) (int, error) { return i, nil },
		[]Worker[int, int]{okWorker},
		func(i, o int) error {
			if i == 7 {
				return boom
			}
			got = append(got, i)
			return nil
		},
		Policy{MaxAttempts: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("write fault not surfaced: %v", err)
	}
	// Partitions before and after the failed one must still be written, in
	// order.
	want := []int{0, 1, 2, 3, 4, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("wrote %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrote %v, want %v", got, want)
		}
	}
	if len(rep.FailedPartitions) != 1 || rep.FailedPartitions[0] != 7 {
		t.Errorf("failed partitions = %v, want [7]", rep.FailedPartitions)
	}
	if rep.Retries != 1 { // one retried write attempt before giving up
		t.Errorf("retries = %d, want 1", rep.Retries)
	}
}

func TestRunResilientWrittenMarksDurablePartitions(t *testing.T) {
	boom := errors.New("disk full")
	rep, err := RunResilient(context.Background(), 10,
		func(i int) (int, error) { return i, nil },
		[]Worker[int, int]{okWorker},
		func(i, o int) error {
			if i == 7 {
				return boom
			}
			return nil
		},
		Policy{MaxAttempts: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("write fault not surfaced: %v", err)
	}
	// Written is the durable-write marker checkpointing keys off: exactly
	// the partitions whose write stage succeeded, failure included in the
	// slice as false.
	if len(rep.Written) != 10 {
		t.Fatalf("Written has %d entries, want 10", len(rep.Written))
	}
	for i, w := range rep.Written {
		if want := i != 7; w != want {
			t.Errorf("Written[%d] = %v, want %v", i, w, want)
		}
	}
}

func TestRunResilientQuarantineWithOneSurvivor(t *testing.T) {
	const n = 30
	dead := errors.New("gpu fell off the bus")
	// Worker 0 blocks until worker 1 has failed twice, forcing the dying
	// worker to actually claim partitions regardless of goroutine
	// scheduling; otherwise the healthy worker can win every claim and the
	// quarantine path never runs.
	release := make(chan struct{})
	var failures atomic.Int64
	workers := []Worker[int, int]{
		func(_ context.Context, x int) (int, error) { <-release; return x, nil },
		func(_ context.Context, x int) (int, error) {
			if failures.Add(1) == 2 {
				close(release)
			}
			return 0, dead
		},
	}
	var got []int
	rep, err := RunResilient(context.Background(), n,
		func(i int) (int, error) { return i, nil },
		workers,
		func(i, o int) error {
			got = append(got, o)
			return nil
		},
		Policy{MaxAttempts: 3, QuarantineAfter: 2})
	if err != nil {
		t.Fatalf("build failed despite a healthy survivor: %v", err)
	}
	if len(got) != n {
		t.Fatalf("wrote %d partitions, want %d", len(got), n)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != 1 {
		t.Errorf("quarantined = %v, want [1]", rep.Quarantined)
	}
	if rep.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1", rep.Requeues)
	}
	for i, w := range rep.Assignment {
		if w != 0 {
			t.Fatalf("partition %d produced by worker %d, want survivor 0", i, w)
		}
	}
}

func TestRunResilientAllWorkersQuarantined(t *testing.T) {
	dead := errors.New("total device loss")
	workers := []Worker[int, int]{
		func(_ context.Context, x int) (int, error) { return 0, dead },
		func(_ context.Context, x int) (int, error) { return 0, dead },
	}
	rep, err := RunResilient(context.Background(), 20,
		func(i int) (int, error) { return i, nil },
		workers,
		func(i, o int) error { return nil },
		Policy{MaxAttempts: 5, QuarantineAfter: 1})
	if !errors.Is(err, ErrNoHealthyWorkers) {
		t.Fatalf("expected ErrNoHealthyWorkers, got: %v", err)
	}
	if !errors.Is(err, dead) {
		t.Fatalf("aggregated error lost the device fault: %v", err)
	}
	if len(rep.Quarantined) != 2 {
		t.Errorf("quarantined = %v, want both workers", rep.Quarantined)
	}
	if len(rep.FailedPartitions) != 20 {
		t.Errorf("failed partitions = %d, want all 20", len(rep.FailedPartitions))
	}
}

func TestRunResilientValidationAndZero(t *testing.T) {
	if _, err := RunResilient(context.Background(), -1, func(i int) (int, error) { return 0, nil },
		[]Worker[int, int]{okWorker}, func(int, int) error { return nil }, Policy{}); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := RunResilient[int, int](context.Background(), 5, func(i int) (int, error) { return 0, nil },
		nil, func(int, int) error { return nil }, Policy{}); err == nil {
		t.Error("no workers accepted")
	}
	rep, err := RunResilient(context.Background(), 0, func(i int) (int, error) { return 0, nil },
		[]Worker[int, int]{okWorker}, func(int, int) error { return nil }, Policy{})
	if err != nil || len(rep.Assignment) != 0 {
		t.Errorf("zero partitions: %v %+v", err, rep)
	}
}

func TestRunResilientZeroPolicyFailsFastButAggregates(t *testing.T) {
	// The zero policy means one attempt per stage and no quarantine —
	// like Run, but with error aggregation instead of first-error abort.
	boom := errors.New("boom")
	var processed atomic.Int64
	_, err := RunResilient(context.Background(), 10,
		func(i int) (int, error) { return i, nil },
		[]Worker[int, int]{func(_ context.Context, x int) (int, error) {
			if x%2 == 1 {
				return 0, boom
			}
			processed.Add(1)
			return x, nil
		}},
		func(i, o int) error { return nil },
		Policy{})
	if !errors.Is(err, boom) {
		t.Fatalf("worker fault not surfaced: %v", err)
	}
	if processed.Load() != 5 {
		t.Errorf("even partitions processed = %d, want 5 (no global abort)", processed.Load())
	}
}

func TestRunResilientStress(t *testing.T) {
	// Race-detector stress: many partitions, several workers, scripted
	// transient faults in every stage. Run with -race in CI.
	const n = 400
	readFailed := make([]atomic.Bool, n)
	workFailed := make([]atomic.Bool, n)
	writeFailed := make([]atomic.Bool, n)
	transient := errors.New("transient")

	workers := make([]Worker[int, int], 4)
	for w := range workers {
		workers[w] = func(_ context.Context, x int) (int, error) {
			if x%13 == 0 && !workFailed[x].Swap(true) {
				return 0, transient
			}
			return x * 3, nil
		}
	}
	var mu sync.Mutex
	got := make([]int, 0, n)
	rep, err := RunResilient(context.Background(), n,
		func(i int) (int, error) {
			if i%17 == 0 && !readFailed[i].Swap(true) {
				return 0, transient
			}
			return i, nil
		},
		workers,
		func(i, o int) error {
			if i%19 == 0 && !writeFailed[i].Swap(true) {
				return transient
			}
			if o != i*3 {
				return fmt.Errorf("partition %d produced %d", i, o)
			}
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			return nil
		},
		Policy{MaxAttempts: 3, QuarantineAfter: 50, BackoffSeconds: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("wrote %d partitions, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("write order broken: %d after %d", got[i], got[i-1])
		}
	}
	wantRetries := len(multiples(n, 13)) + len(multiples(n, 17)) + len(multiples(n, 19))
	if rep.Retries != wantRetries {
		t.Errorf("retries = %d, want %d", rep.Retries, wantRetries)
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("unexpected quarantine: %v", rep.Quarantined)
	}
}

// multiples returns the multiples of k in [0, n).
func multiples(n, k int) []int {
	var out []int
	for i := 0; i < n; i += k {
		out = append(out, i)
	}
	return out
}
