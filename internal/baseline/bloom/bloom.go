// Package bloom implements a BFCounter-style k-mer counter (Melsted &
// Pritchard 2011, the paper's [10]): a Bloom filter screens out the flood
// of once-seen (mostly erroneous) k-mers so that only k-mers observed at
// least twice enter the exact counting table, cutting memory dramatically.
//
// Like the lock-free counter, this baseline counts occurrences only — it
// is one of the "k-mer counters [that] do not generate the complete De
// Bruijn graph in the output" the paper excludes from its end-to-end
// comparison (§V-A) — and it exists here to make that contrast concrete.
package bloom

import (
	"fmt"
	"math"

	"parahash/internal/dna"
)

// Filter is a classic Bloom filter over k-mers. It is not safe for
// concurrent use; BFCounter shards by input partition instead.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
}

// NewFilter sizes a Bloom filter for n expected elements at the target
// false-positive rate.
func NewFilter(n int, fpRate float64) (*Filter, error) {
	if n < 1 {
		return nil, fmt.Errorf("bloom: expected elements %d must be positive", n)
	}
	if fpRate <= 0 || fpRate >= 1 {
		return nil, fmt.Errorf("bloom: false-positive rate %g out of (0,1)", fpRate)
	}
	// Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		bits:   make([]uint64, (m+63)/64),
		nbits:  m,
		hashes: k,
	}, nil
}

// indexes derives the probe positions via double hashing.
func (f *Filter) indexes(km dna.Kmer, fn func(idx uint64) bool) {
	h1 := km.Hash()
	h2 := dna.Mix64(h1 ^ 0x9e3779b97f4a7c15)
	if h2%2 == 0 {
		h2++
	}
	for i := 0; i < f.hashes; i++ {
		if !fn((h1 + uint64(i)*h2) % f.nbits) {
			return
		}
	}
}

// TestAndAdd inserts the k-mer and reports whether it was (probably)
// already present.
func (f *Filter) TestAndAdd(km dna.Kmer) bool {
	present := true
	f.indexes(km, func(idx uint64) bool {
		word, bit := idx/64, idx%64
		if f.bits[word]&(1<<bit) == 0 {
			present = false
			f.bits[word] |= 1 << bit
		}
		return true
	})
	return present
}

// Test reports whether the k-mer is (probably) present.
func (f *Filter) Test(km dna.Kmer) bool {
	present := true
	f.indexes(km, func(idx uint64) bool {
		word, bit := idx/64, idx%64
		if f.bits[word]&(1<<bit) == 0 {
			present = false
			return false
		}
		return true
	})
	return present
}

// MemoryBytes is the filter's bit-array footprint.
func (f *Filter) MemoryBytes() int64 { return int64(len(f.bits)) * 8 }

// Counter is the BFCounter scheme: first occurrences park in the Bloom
// filter; a k-mer reaching its second occurrence is promoted to the exact
// table with count 2 and counted exactly thereafter.
type Counter struct {
	filter *Filter
	counts map[dna.Kmer]uint32
	adds   int64
}

// NewCounter creates a counter expecting roughly n distinct k-mers.
func NewCounter(n int, fpRate float64) (*Counter, error) {
	f, err := NewFilter(n, fpRate)
	if err != nil {
		return nil, err
	}
	return &Counter{filter: f, counts: make(map[dna.Kmer]uint32)}, nil
}

// Add counts one occurrence of the canonical k-mer.
func (c *Counter) Add(km dna.Kmer) {
	c.adds++
	if _, exact := c.counts[km]; exact {
		c.counts[km]++
		return
	}
	if c.filter.TestAndAdd(km) {
		// Second (or false-positive "second") sighting: promote.
		c.counts[km] = 2
	}
}

// Count returns the exact count for k-mers seen at least twice, and 0 for
// singletons (which stay inside the Bloom filter, uncounted — the scheme's
// defining trade-off).
func (c *Counter) Count(km dna.Kmer) uint32 { return c.counts[km] }

// DistinctRepeated returns the number of k-mers counted exactly (seen >=2
// times, modulo Bloom false positives promoting a few singletons).
func (c *Counter) DistinctRepeated() int { return len(c.counts) }

// Adds returns the total occurrences ingested.
func (c *Counter) Adds() int64 { return c.adds }

// MemoryBytes approximates the counter's footprint: the filter plus the
// exact table.
func (c *Counter) MemoryBytes() int64 {
	return c.filter.MemoryBytes() + int64(len(c.counts))*40
}
