package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestGateNilAdmitsEverything(t *testing.T) {
	var g *Gate
	if err := g.Acquire(context.Background(), 1<<40); err != nil {
		t.Fatalf("nil gate Acquire: %v", err)
	}
	g.Release(1 << 40)
	if s := g.Stats(); s != (GateStats{}) {
		t.Fatalf("nil gate stats = %+v, want zero", s)
	}
}

func TestGateRejectsNonPositiveBudget(t *testing.T) {
	for _, b := range []int64{0, -1} {
		if _, err := NewGate(b); err == nil {
			t.Fatalf("NewGate(%d) succeeded, want error", b)
		}
	}
}

func TestGateAdmitsUnderBudgetWithoutWaiting(t *testing.T) {
	g, err := NewGate(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := g.Acquire(context.Background(), 25); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	s := g.Stats()
	if s.Admissions != 4 || s.Waits != 0 || s.PeakBytes != 100 {
		t.Fatalf("stats = %+v, want 4 admissions, 0 waits, peak 100", s)
	}
	for i := 0; i < 4; i++ {
		g.Release(25)
	}
	if err := g.Acquire(context.Background(), 100); err != nil {
		t.Fatalf("budget not fully returned: %v", err)
	}
}

func TestGateQueuesAndGrantsFIFO(t *testing.T) {
	g, err := NewGate(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background(), 8); err != nil {
		t.Fatal(err)
	}

	// Queue a large waiter first, then a small one that would fit right now.
	// FIFO admission must not let the small one starve the large one: after
	// the release only the large head fits (9 of 10), so the small waiter (2)
	// stays queued behind it.
	order := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := g.Acquire(context.Background(), 9); err != nil {
			t.Errorf("large acquire: %v", err)
		}
		order <- 9
	}()
	waitForWaiters(t, g, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := g.Acquire(context.Background(), 2); err != nil {
			t.Errorf("small acquire: %v", err)
		}
		order <- 2
	}()
	waitForWaiters(t, g, 2)

	g.Release(8)
	if first := <-order; first != 9 {
		t.Fatalf("admission order starts with weight %d, want the FIFO head (9)", first)
	}
	g.Release(9)
	wg.Wait()
	if second := <-order; second != 2 {
		t.Fatalf("second admission has weight %d, want 2", second)
	}
	g.Release(2)
	s := g.Stats()
	if s.Waits != 2 {
		t.Fatalf("Waits = %d, want 2", s.Waits)
	}
	if s.PeakBytes > 10 {
		t.Fatalf("PeakBytes = %d exceeds budget 10", s.PeakBytes)
	}
}

// TestGateWaitEWMA checks the queue-pressure estimate: immediate admissions
// keep it at zero, a queued admission pulls it up toward the observed wait,
// and subsequent immediate admissions decay it geometrically back down.
func TestGateWaitEWMA(t *testing.T) {
	g, err := NewGate(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if e := g.Stats().WaitEWMASeconds; e != 0 {
		t.Fatalf("EWMA after immediate admission = %v, want 0", e)
	}

	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background(), 10) }()
	waitForWaiters(t, g, 1)
	time.Sleep(20 * time.Millisecond)
	g.Release(10)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	after := g.Stats().WaitEWMASeconds
	if after <= 0 {
		t.Fatalf("EWMA after a queued admission = %v, want > 0", after)
	}
	g.Release(10)

	// Pressure gone: immediate admissions decay the estimate toward zero.
	for i := 0; i < 3; i++ {
		if err := g.Acquire(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		g.Release(1)
	}
	decayed := g.Stats().WaitEWMASeconds
	if decayed >= after {
		t.Fatalf("EWMA did not decay: %v -> %v", after, decayed)
	}
	want := after * (1 - waitEWMAAlpha) * (1 - waitEWMAAlpha) * (1 - waitEWMAAlpha)
	if diff := decayed - want; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("EWMA decay = %v, want %v", decayed, want)
	}
}

func TestGateClampsOversizedWeight(t *testing.T) {
	g, err := NewGate(10)
	if err != nil {
		t.Fatal(err)
	}
	// A partition predicted above the whole budget is admitted (alone)
	// rather than deadlocking the pipeline.
	if err := g.Acquire(context.Background(), 1000); err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	s := g.Stats()
	if s.Clamped != 1 {
		t.Fatalf("Clamped = %d, want 1", s.Clamped)
	}
	if s.PeakBytes != 10 {
		t.Fatalf("PeakBytes = %d, want clamped to budget 10", s.PeakBytes)
	}
	// Nothing else fits while it runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Acquire(ctx, 1); err == nil {
		t.Fatal("second acquire admitted alongside a clamped full-budget grant")
	}
	g.Release(1000)
	if err := g.Acquire(context.Background(), 10); err != nil {
		t.Fatalf("budget not restored after clamped release: %v", err)
	}
}

func TestGateCancelWhileQueued(t *testing.T) {
	g, err := NewGate(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("giving up")
	ctx, cancel := context.WithCancelCause(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, 5) }()
	waitForWaiters(t, g, 1)
	cancel(cause)
	if err := <-done; !errors.Is(err, cause) {
		t.Fatalf("queued acquire returned %v, want cause %v", err, cause)
	}
	// The abandoned waiter must not leak reserved weight.
	g.Release(10)
	if err := g.Acquire(context.Background(), 10); err != nil {
		t.Fatalf("budget leaked by canceled waiter: %v", err)
	}
}

func TestGateCancelAtHeadUnblocksSmallerWaiters(t *testing.T) {
	// Regression test for the head-of-queue liveness bug: a large waiter
	// canceled while queued must re-run the grant scan so smaller waiters
	// behind it are admitted immediately, not on the next Release (which
	// for a long-running admitted job may be arbitrarily far away).
	g, err := NewGate(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	bigCtx, cancelBig := context.WithCancel(context.Background())
	bigDone := make(chan error, 1)
	go func() { bigDone <- g.Acquire(bigCtx, 5) }()
	waitForWaiters(t, g, 1)
	smallDone := make(chan error, 1)
	go func() { smallDone <- g.Acquire(context.Background(), 2) }()
	waitForWaiters(t, g, 2)

	cancelBig()
	if err := <-bigDone; err == nil {
		t.Fatal("canceled head waiter acquired anyway")
	}
	// The small waiter now fits (8+2 <= 10) and must be granted without
	// any intervening Release.
	select {
	case err := <-smallDone:
		if err != nil {
			t.Fatalf("small waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("small waiter still blocked after head waiter canceled")
	}
	g.Release(2)
	g.Release(8)
	if s := g.Stats(); s.BalanceBytes != 0 {
		t.Fatalf("BalanceBytes = %d after drain, want 0", s.BalanceBytes)
	}
}

func TestGateCancelWhileWaitingStress(t *testing.T) {
	// Satellite hardening: hammer the gate with acquisitions whose contexts
	// race cancellation against admission. Whatever interleaving each
	// Acquire lands on — granted, canceled-while-queued, or granted-then-
	// canceled — the gate must end balanced (BalanceBytes==0), never exceed
	// the budget, and leak no goroutines.
	check := goroutineFence(t)
	const budget = 32
	g, err := NewGate(budget)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < 200; j++ {
				w := int64(1 + rng.Intn(budget))
				ctx, cancel := context.WithCancel(context.Background())
				if rng.Intn(2) == 0 {
					// Race the cancel against admission from another
					// goroutine so some cancels land while queued and
					// some after a racing grant.
					go cancel()
				}
				err := g.Acquire(ctx, w)
				if err == nil {
					if rng.Intn(4) == 0 {
						runtime.Gosched()
					}
					g.Release(w)
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	s := g.Stats()
	if s.BalanceBytes != 0 {
		t.Fatalf("BalanceBytes = %d after stress, want 0", s.BalanceBytes)
	}
	if s.PeakBytes > budget {
		t.Fatalf("PeakBytes = %d exceeds budget %d", s.PeakBytes, budget)
	}
	// The full budget must still be acquirable: nothing leaked.
	if err := g.Acquire(context.Background(), budget); err != nil {
		t.Fatalf("budget leaked under cancel stress: %v", err)
	}
	g.Release(budget)
	check()
}

func TestGateConcurrentStressStaysUnderBudget(t *testing.T) {
	const budget = 64
	g, err := NewGate(budget)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := int64(1 + i%7*9) // weights 1..55
			for j := 0; j < 50; j++ {
				if err := g.Acquire(context.Background(), w); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				g.Release(w)
			}
		}(i)
	}
	wg.Wait()
	s := g.Stats()
	if s.PeakBytes > budget {
		t.Fatalf("PeakBytes = %d exceeds budget %d", s.PeakBytes, budget)
	}
	if s.Admissions != 16*50 {
		t.Fatalf("Admissions = %d, want %d", s.Admissions, 16*50)
	}
	if err := g.Acquire(context.Background(), budget); err != nil {
		t.Fatalf("budget out of balance after stress: %v", err)
	}
}

// waitForWaiters blocks until the gate's queue reaches n entries.
func waitForWaiters(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		q := len(g.waiters)
		g.mu.Unlock()
		if q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate queue stuck at %d waiters, want %d", q, n)
		}
		time.Sleep(time.Millisecond)
	}
}
