package device

import (
	"context"
	"errors"
	"testing"

	"parahash/internal/costmodel"
	"parahash/internal/fastq"
	"parahash/internal/graph"
	"parahash/internal/hashtable"
	"parahash/internal/msp"
	"parahash/internal/simulate"
)

func testReads(t testing.TB) []fastq.Read {
	t.Helper()
	d, err := simulate.Generate(simulate.TinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	return d.Reads
}

func gatherSuperkmers(t testing.TB, reads []fastq.Read, k, p int) []msp.Superkmer {
	t.Helper()
	var sks []msp.Superkmer
	for _, rd := range reads {
		sks = msp.SuperkmersFromRead(sks, rd.Bases, k, p)
	}
	return sks
}

func TestKindString(t *testing.T) {
	if KindCPU.String() != "CPU" || KindGPU.String() != "GPU" || Kind(0).String() != "unknown" {
		t.Error("Kind.String broken")
	}
}

func TestCPUAndGPUStep1Agree(t *testing.T) {
	reads := testReads(t)
	cal := costmodel.DefaultCalibration()
	cpu := &CPU{Threads: 4, Cal: cal}
	gpu := &GPU{Index: 0, Cal: cal}

	a, err := cpu.Step1(context.Background(), reads, 27, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gpu.Step1(context.Background(), reads, 27, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Superkmers) != len(b.Superkmers) {
		t.Fatalf("superkmer counts differ: %d vs %d", len(a.Superkmers), len(b.Superkmers))
	}
	if a.Bases != b.Bases {
		t.Fatalf("base counts differ: %d vs %d", a.Bases, b.Bases)
	}
	for i := range a.Superkmers {
		if a.Superkmers[i].Minimizer != b.Superkmers[i].Minimizer ||
			len(a.Superkmers[i].Bases) != len(b.Superkmers[i].Bases) {
			t.Fatalf("superkmer %d differs between CPU and GPU", i)
		}
	}
	if a.Seconds <= 0 || b.Seconds <= 0 {
		t.Error("virtual time not charged")
	}
	if a.TransferBytes != 0 {
		t.Error("CPU should not report transfer")
	}
	if b.TransferBytes <= 0 || b.TransferSeconds <= 0 {
		t.Error("GPU transfer not accounted")
	}
}

func TestCPUAndGPUStep2ProduceIdenticalGraphs(t *testing.T) {
	reads := testReads(t)
	k, p := 27, 11
	sks := gatherSuperkmers(t, reads, k, p)
	slots := hashtable.SizeForKmers(int64(len(sks)*80), 2, 0.65)

	cal := costmodel.DefaultCalibration()
	cpu := &CPU{Threads: 4, Cal: cal}
	gpu := &GPU{Index: 1, Cal: cal}

	a, err := cpu.Step2(context.Background(), sks, k, slots)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gpu.Step2(context.Background(), sks, k, slots)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("CPU and GPU built different graphs")
	}
	// Both must match the naive oracle.
	want := graph.BuildNaive(reads, k)
	if !a.Graph.Equal(want) {
		t.Fatal("device graph differs from naive reference")
	}
	if a.Kmers != b.Kmers || a.Kmers == 0 {
		t.Errorf("kmer counts: %d vs %d", a.Kmers, b.Kmers)
	}
	if a.Distinct != int64(want.NumVertices()) {
		t.Errorf("distinct = %d, want %d", a.Distinct, want.NumVertices())
	}
}

func TestGPUStep2Accounting(t *testing.T) {
	reads := testReads(t)
	k, p := 27, 11
	sks := gatherSuperkmers(t, reads, k, p)
	gpu := &GPU{Cal: costmodel.DefaultCalibration()}
	out, err := gpu.Step2(context.Background(), sks, k, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if out.TransferBytes <= 0 {
		t.Error("no transfer bytes accounted")
	}
	if out.Seconds <= out.ComputeSeconds {
		t.Error("GPU elapsed should include transfer on top of compute")
	}
	if out.WarpDivergence < 1 {
		t.Errorf("warp divergence = %.3f, must be >= 1", out.WarpDivergence)
	}
	if out.LockedInserts != out.Distinct {
		t.Errorf("locked inserts %d != distinct %d", out.LockedInserts, out.Distinct)
	}
	if out.LockFreeUpdates != out.Kmers-out.Distinct {
		t.Errorf("lock-free updates %d, want %d", out.LockFreeUpdates, out.Kmers-out.Distinct)
	}
}

func TestCPUStep2ThreadCountInvariance(t *testing.T) {
	reads := testReads(t)
	k, p := 27, 11
	sks := gatherSuperkmers(t, reads, k, p)
	cal := costmodel.DefaultCalibration()
	var prev *graph.Subgraph
	for _, threads := range []int{1, 2, 8} {
		cpu := &CPU{Threads: threads, Cal: cal}
		out, err := cpu.Step2(context.Background(), sks, k, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !out.Graph.Equal(prev) {
			t.Fatalf("graph changed with %d threads", threads)
		}
		prev = out.Graph
	}
}

func TestCPUVirtualTimeScalesWithThreads(t *testing.T) {
	reads := testReads(t)
	k, p := 27, 11
	sks := gatherSuperkmers(t, reads, k, p)
	cal := costmodel.DefaultCalibration()
	t1, err := (&CPU{Threads: 1, Cal: cal}).Step2(context.Background(), sks, k, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := (&CPU{Threads: 8, Cal: cal}).Step2(context.Background(), sks, k, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	ratio := t1.Seconds / t8.Seconds
	if ratio < 7.9 || ratio > 8.1 {
		t.Errorf("1->8 thread speedup = %.2f, want 8", ratio)
	}
}

func TestCPUValidation(t *testing.T) {
	cpu := &CPU{Threads: 0, Cal: costmodel.DefaultCalibration()}
	if _, err := cpu.Step1(context.Background(), nil, 27, 11); err == nil {
		t.Error("threads=0 accepted in Step1")
	}
	if _, err := cpu.Step2(context.Background(), nil, 27, 16); err == nil {
		t.Error("threads=0 accepted in Step2")
	}
}

func TestProcessorNames(t *testing.T) {
	cpu := &CPU{Threads: 1}
	if cpu.Name() != "CPU" || cpu.Kind() != KindCPU {
		t.Error("CPU identity broken")
	}
	gpu := &GPU{Index: 1}
	if gpu.Name() != "GPU1" || gpu.Kind() != KindGPU {
		t.Error("GPU identity broken")
	}
}

func TestEmptyPartition(t *testing.T) {
	cal := costmodel.DefaultCalibration()
	cpu := &CPU{Threads: 2, Cal: cal}
	out, err := cpu.Step2(context.Background(), nil, 27, 16)
	if err != nil {
		t.Fatal(err)
	}
	if out.Graph.NumVertices() != 0 || out.Kmers != 0 {
		t.Error("empty partition should build empty graph")
	}
	gpu := &GPU{Cal: cal}
	gout, err := gpu.Step2(context.Background(), nil, 27, 16)
	if err != nil {
		t.Fatal(err)
	}
	if gout.Graph.NumVertices() != 0 || gout.WarpDivergence != 0 {
		t.Error("empty GPU partition should be empty with no divergence")
	}
}

func TestGPUDeviceMemoryLimit(t *testing.T) {
	reads := testReads(t)
	sks := gatherSuperkmers(t, reads, 27, 11)
	gpu := &GPU{Cal: costmodel.DefaultCalibration(), MemoryBytes: 1024}
	_, err := gpu.Step2(context.Background(), sks, 27, 1<<16)
	if !errors.Is(err, ErrDeviceMemory) {
		t.Fatalf("expected ErrDeviceMemory, got %v", err)
	}
	// A sufficient budget succeeds.
	gpu.MemoryBytes = 1 << 30
	if _, err := gpu.Step2(context.Background(), sks, 27, 1<<16); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateHost(t *testing.T) {
	if raceEnabled {
		t.Skip("host calibration measures wall-clock throughput; race instrumentation makes the plausibility floors meaningless")
	}
	cal := CalibrateHost(4)
	if err := cal.Validate(); err != nil {
		t.Fatal(err)
	}
	if cal.CPUThreads != 4 {
		t.Errorf("threads = %d", cal.CPUThreads)
	}
	// Measured throughputs must be sane: a modern CPU scans at least a few
	// Mbases/s and hashes at least a few hundred k kmers/s per thread.
	if cal.CPUThreadStep1BasesPerSec < 1e6 {
		t.Errorf("implausible Step1 throughput %.0f bases/s", cal.CPUThreadStep1BasesPerSec)
	}
	if cal.CPUThreadStep2KmersPerSec < 1e5 {
		t.Errorf("implausible Step2 throughput %.0f kmers/s", cal.CPUThreadStep2KmersPerSec)
	}
	// GPU constants keep the paper's relative speeds.
	ref := costmodel.DefaultCalibration()
	wantRatio := ref.GPUStep2KmersPerSec / ref.CPUThreadStep2KmersPerSec
	gotRatio := cal.GPUStep2KmersPerSec / cal.CPUThreadStep2KmersPerSec
	if gotRatio < wantRatio*0.99 || gotRatio > wantRatio*1.01 {
		t.Errorf("GPU/CPU ratio drifted: %.2f vs %.2f", gotRatio, wantRatio)
	}
	if CalibrateHost(0).CPUThreads != 1 {
		t.Error("threads floor broken")
	}
}
