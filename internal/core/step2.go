package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"parahash/internal/device"
	"parahash/internal/dna"
	"parahash/internal/faultinject"
	"parahash/internal/graph"
	"parahash/internal/hashtable"
	"parahash/internal/msp"
	"parahash/internal/obs"
	"parahash/internal/pipeline"
	"parahash/internal/store"
)

// ErrResizeExhausted reports a partition whose hash table still overflows
// after the bounded number of doublings; a pathological partition must
// surface a typed error instead of resizing forever.
var ErrResizeExhausted = errors.New("core: hash table resize attempts exhausted")

// maxTableResizes bounds the Step 2 fallback resize loop. Property 1
// pre-sizing is normally within a factor of two, so 16 doublings (a 65536×
// under-estimate) only trips on genuinely pathological partitions.
const maxTableResizes = 16

// step2Work records one superkmer partition's measured work.
type step2Work struct {
	kmers      int64
	fileBytes  int64
	tableBytes int64
	graphBytes int64
	distinct   int64

	// decodedBytes counts the encoded partition bytes the read stage
	// actually consumed (retries included).
	decodedBytes int64

	// Hash table work counters copied from the processor's Step2Output.
	inserts, updates       int64
	probes                 int64
	lockWaits, casFailures int64
}

// loadPartition decodes a superkmer partition from the store, copying each
// record out of the decoder's reuse buffer, and reports the encoded bytes
// consumed. The decoder demands the integrity footer our own Step 1 always
// writes, so truncated or corrupted partition bytes fail with a typed,
// retryable error instead of silently mis-decoding.
func loadPartition(st store.PartitionStore, name string) ([]msp.Superkmer, int64, error) {
	r, err := st.Open(name)
	if err != nil {
		return nil, 0, err
	}
	dec := msp.NewDecoder(r)
	dec.RequireFooter = true
	var sks []msp.Superkmer
	for {
		sk, err := dec.Next()
		if err == io.EOF {
			return sks, dec.BytesRead(), nil
		}
		if err != nil {
			return nil, dec.BytesRead(), err
		}
		bases := make([]dna.Base, len(sk.Bases))
		copy(bases, sk.Bases)
		sk.Bases = bases
		sks = append(sks, sk)
	}
}

// runStep2 executes the subgraph construction step: superkmer partitions
// flow through the pipeline, each hashed by an idle processor into a
// subgraph that the output stage serialises to the store. With a checkpoint,
// partitions whose Step 2 completion already verified are skipped entirely,
// and every freshly published subgraph is journalled in the manifest.
func runStep2(ctx context.Context, partStats []msp.PartitionStats, cfg Config, st store.PartitionStore, ck *checkpoint) ([]*graph.Subgraph, []step2Work, StepStats, error) {
	np := len(partStats)
	procs := processors(cfg)
	// pending maps pipeline slots to partition indices: only partitions not
	// already durably completed are scheduled.
	pending := make([]int, 0, np)
	for i := 0; i < np; i++ {
		if ck == nil || !ck.skipStep2(i) {
			pending = append(pending, i)
		}
	}
	works := make([]step2Work, len(pending))
	var subgraphs []*graph.Subgraph
	if cfg.KeepSubgraphs {
		subgraphs = make([]*graph.Subgraph, np)
		if ck != nil {
			for i, g := range ck.subgraphs {
				subgraphs[i] = g
			}
		}
	}

	workers := make([]pipeline.Worker[[]msp.Superkmer, device.Step2Output], len(procs))
	for i, p := range procs {
		p := p
		workers[i] = func(ctx context.Context, sks []msp.Superkmer) (device.Step2Output, error) {
			return step2Construct(ctx, p, sks, cfg)
		}
	}

	pol := cfg.resiliencePolicy()
	if cfg.MemoryBudgetBytes > 0 {
		gate, err := pipeline.NewGate(cfg.MemoryBudgetBytes)
		if err != nil {
			return nil, nil, StepStats{}, err
		}
		pol.Admission = gate
		// A partition's admission weight is its Property-1 predicted hash
		// table footprint — the same λ/(4α)·N_kmer pre-sizing Step 2 itself
		// uses — so the gate bounds exactly the bytes the tables will claim.
		backend := cfg.tableBackend()
		pol.AdmissionWeight = func(slot int) int64 {
			kmers := partStats[pending[slot]].Kmers
			slots, err := hashtable.SizeForKmersChecked(kmers, cfg.Lambda, cfg.Alpha)
			if err != nil {
				// Sizing itself will fail in the worker with a proper error;
				// admit under the full budget so it gets there.
				return cfg.MemoryBudgetBytes
			}
			return hashtable.MemoryBytesForBackend(backend, cfg.K, slots)
		}
	}

	read := func(slot int) ([]msp.Superkmer, error) {
		sks, decoded, err := loadPartition(st, superkmerFile(pending[slot]))
		// Accumulate (not assign): a retried read re-decodes the partition
		// and both passes cost real IO. The write closure fills the other
		// fields; the pipeline's stage ordering makes the shared struct safe.
		works[slot].decodedBytes += decoded
		return sks, err
	}
	write := func(slot int, out device.Step2Output) error {
		i := pending[slot]
		w := &works[slot]
		w.kmers = out.Kmers
		w.fileBytes = partStats[i].EncodedBytes
		w.tableBytes = out.TableBytes
		w.distinct = out.Distinct
		w.inserts = out.LockedInserts
		w.updates = out.LockFreeUpdates
		w.probes = out.Probes
		w.lockWaits = out.LockWaits
		w.casFailures = out.CASFailures
		toWrite := out.Graph
		if cfg.OutputFilterMin > 1 {
			filtered := &graph.Subgraph{K: toWrite.K,
				Vertices: append([]graph.Vertex(nil), toWrite.Vertices...)}
			filtered.FilterByMultiplicity(cfg.OutputFilterMin)
			toWrite = filtered
		}
		w.graphBytes = graph.SerializedSize(toWrite.NumVertices())
		sink, err := st.Create(subgraphFile(i))
		if err != nil {
			return fmt.Errorf("core: creating subgraph %d: %w", i, err)
		}
		if err := toWrite.Write(sink); err != nil {
			sink.Close()
			return fmt.Errorf("core: writing subgraph %d: %w", i, err)
		}
		if err := sink.Close(); err != nil {
			return err
		}
		// The file is durably published only after Close; journal the
		// completion now, then honour an armed crash point — a kill here
		// models power loss with the partition already safe.
		if ck != nil {
			if err := ck.markStep2(i, toWrite, out.Distinct); err != nil {
				return err
			}
		}
		faultinject.MaybeCrash("step2.partition")
		// The armed stall point models a build wedged after journalling this
		// partition; the SIGINT e2e test uses it to hold the run mid-Step 2
		// with a known set of completed partitions.
		if err := faultinject.MaybeStall(ctx, "step2.partition"); err != nil {
			return err
		}
		if cfg.KeepSubgraphs {
			subgraphs[i] = out.Graph
		}
		return nil
	}

	report, err := pipeline.RunResilientTraced(ctx, len(pending), read, workers, write, pol, stepRecorder(cfg, "step2", procs))
	if err != nil {
		return nil, nil, StepStats{}, err
	}

	stats, err := scheduleStep2(works, cfg, procs)
	if err != nil {
		return nil, nil, StepStats{}, err
	}
	applyReport(&stats, report, procs)
	return subgraphs, works, stats, nil
}

// foldStep2Works accumulates the per-partition Step 2 measurements into the
// run stats — distinct vertices, hash table work counters, decoded bytes —
// and returns the largest single-partition residency (table + encoded input
// + graph) for the peak-memory estimate.
func foldStep2Works(st *Stats, works []step2Work) int64 {
	var peak int64
	for _, w := range works {
		st.DistinctVertices += w.distinct
		st.Hash.Inserts += w.inserts
		st.Hash.Updates += w.updates
		st.Hash.Probes += w.probes
		st.Hash.LockWaits += w.lockWaits
		st.Hash.CASFailures += w.casFailures
		st.DecodedBytes += w.decodedBytes
		if resident := w.tableBytes + w.fileBytes + w.graphBytes; resident > peak {
			peak = resident
		}
	}
	return peak
}

// step2Construct sizes the hash table for one partition and builds its
// subgraph on processor p, doubling the table when Property 1's pre-sizing
// under-estimated — but only maxTableResizes times, so a pathological
// partition surfaces ErrResizeExhausted instead of looping forever.
func step2Construct(ctx context.Context, p device.Processor, sks []msp.Superkmer, cfg Config) (device.Step2Output, error) {
	var kmers int64
	for _, sk := range sks {
		kmers += int64(sk.NumKmers(cfg.K))
	}
	slots, err := hashtable.SizeForKmersChecked(kmers, cfg.Lambda, cfg.Alpha)
	if err != nil {
		return device.Step2Output{}, fmt.Errorf("core: sizing hash table for %d kmers: %w", kmers, err)
	}
	// Failed attempts still performed real hash-table work before the table
	// overflowed; fold those counters into the eventual successful output so
	// the run stats stay monotonic and honest across resizes.
	var wasted device.Step2Output
	for resizes := 0; ; resizes++ {
		out, err := p.Step2(ctx, sks, cfg.K, slots)
		if !errors.Is(err, hashtable.ErrTableFull) {
			out.LockedInserts += wasted.LockedInserts
			out.LockFreeUpdates += wasted.LockFreeUpdates
			out.Probes += wasted.Probes
			out.LockWaits += wasted.LockWaits
			out.CASFailures += wasted.CASFailures
			return out, err
		}
		wasted.LockedInserts += out.LockedInserts
		wasted.LockFreeUpdates += out.LockFreeUpdates
		wasted.Probes += out.Probes
		wasted.LockWaits += out.LockWaits
		wasted.CASFailures += out.CASFailures
		// Property 1 under-estimated this partition (possible for unusual
		// inputs, e.g. coverage below 1); fall back to the resize path the
		// pre-sizing normally avoids.
		if resizes >= maxTableResizes {
			return device.Step2Output{}, fmt.Errorf(
				"%w: %d kmers still overflow %d slots after %d doublings",
				ErrResizeExhausted, kmers, slots, resizes)
		}
		slots *= 2
	}
}

// step2Cost returns processor p's virtual seconds for one partition.
func step2Cost(cfg Config, p device.Processor, w step2Work) float64 {
	if p.Kind() == device.KindCPU {
		return cfg.Calibration.CPUStep2Seconds(w.kmers, cpuThreadsOf(p), w.tableBytes)
	}
	transfer := w.fileBytes + w.graphBytes
	return cfg.Calibration.GPUStep2Seconds(w.kmers, transfer, w.tableBytes)
}

// scheduleStep2 computes the step's virtual-time schedule.
func scheduleStep2(works []step2Work, cfg Config, procs []device.Processor) (StepStats, error) {
	parts := make([]pipeline.Partition, len(works))
	solo := make([]float64, len(procs))
	for i, w := range works {
		costs := make([]float64, len(procs))
		for p, proc := range procs {
			costs[p] = step2Cost(cfg, proc, w)
			solo[p] += costs[p]
		}
		outputSeconds := cfg.Calibration.WriteSeconds(cfg.Medium, w.graphBytes)
		if cfg.ExcludeGraphOutput {
			outputSeconds = 0
		}
		parts[i] = pipeline.Partition{
			InputSeconds:   cfg.Calibration.ReadSeconds(cfg.Medium, w.fileBytes),
			OutputSeconds:  outputSeconds,
			ComputeSeconds: costs,
			WorkUnits:      w.distinct,
		}
	}
	sched, err := pipeline.Simulate(parts, len(procs))
	if err != nil {
		return StepStats{}, err
	}
	if cfg.Trace != nil {
		obs.TraceSchedule(cfg.Trace, "step2", procNames(procs), sched)
	}
	return stepStatsFromSchedule(sched, procs, solo), nil
}
