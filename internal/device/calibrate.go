package device

import (
	"math/rand"
	"time"

	"parahash/internal/costmodel"
	"parahash/internal/dna"
	"parahash/internal/hashtable"
	"parahash/internal/msp"
)

// CalibrateHost measures this machine's real single-thread throughput on
// the two ParaHash kernels — MSP superkmer scanning (Step 1) and
// state-transfer hash insertion (Step 2) — and returns a Calibration whose
// CPU constants reflect the host. GPU, PCIe and disk constants keep the
// paper-machine defaults (this host has none of that hardware to measure).
//
// Use it when virtual times should predict *this* machine's wall clock
// rather than reproduce the paper's:
//
//	cfg.Calibration = device.CalibrateHost(runtime.NumCPU())
//
// The measurement costs roughly a quarter second.
func CalibrateHost(threads int) costmodel.Calibration {
	cal := costmodel.DefaultCalibration()
	if threads < 1 {
		threads = 1
	}
	cal.CPUThreads = threads

	const (
		k = 27
		p = 11
		// Workload sizes chosen so each measurement runs a few tens of
		// milliseconds on commodity hardware.
		scanReads = 2000
		readLen   = 101
		hashEdges = 1 << 18
		hashKeys  = 1 << 15
	)
	rng := rand.New(rand.NewSource(0xCA11))

	// Step 1 kernel: superkmer scanning throughput in bases/s.
	reads := make([][]dna.Base, scanReads)
	for i := range reads {
		r := make([]dna.Base, readLen)
		for j := range r {
			r[j] = dna.Base(rng.Intn(4))
		}
		reads[i] = r
	}
	sc := msp.Scanner{K: k, P: p}
	var sks []msp.Superkmer
	start := time.Now()
	var bases int64
	for _, r := range reads {
		sks = sc.Superkmers(sks[:0], r)
		bases += int64(len(r))
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		cal.CPUThreadStep1BasesPerSec = float64(bases) / elapsed
	}

	// Step 2 kernel: insertion/update throughput in k-mers/s, with the
	// realistic ~1:5 distinct:duplicate mix.
	keys := make([]dna.Kmer, hashKeys)
	for i := range keys {
		b := make([]dna.Base, k)
		for j := range b {
			b[j] = dna.Base(rng.Intn(4))
		}
		keys[i], _ = dna.KmerFromBases(b, k).Canonical(k)
	}
	edges := make([]msp.KmerEdge, hashEdges)
	for i := range edges {
		edges[i] = msp.KmerEdge{
			Canon: keys[rng.Intn(len(keys))],
			Left:  int8(rng.Intn(4)),
			Right: int8(rng.Intn(4)),
		}
	}
	table, err := hashtable.New(k, hashEdges)
	if err != nil {
		return cal // cannot happen with these constants
	}
	start = time.Now()
	for _, e := range edges {
		if table.InsertEdge(e) != nil {
			break
		}
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		cal.CPUThreadStep2KmersPerSec = float64(hashEdges) / elapsed
	}

	// The GPU constants scale with the measured CPU so that the simulated
	// co-processing keeps the paper's relative speeds on this host.
	ref := costmodel.DefaultCalibration()
	cal.GPUStep1BasesPerSec = ref.GPUStep1BasesPerSec / ref.CPUThreadStep1BasesPerSec * cal.CPUThreadStep1BasesPerSec
	cal.GPUStep2KmersPerSec = ref.GPUStep2KmersPerSec / ref.CPUThreadStep2KmersPerSec * cal.CPUThreadStep2KmersPerSec
	return cal
}
