package hashtable

import (
	"runtime"
	"testing"
)

// TestHandleShardSingleProcFastPath pins the single-processor counter
// routing: with GOMAXPROCS=1 there is no contention to shard away, so every
// Inserter handle must share shard 0 (one hot cache line), while with more
// processors distinct workers must get distinct shards. This is the
// structural guard for the 0.88× single-worker regression the padded
// counters introduced.
func TestHandleShardSingleProcFastPath(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	var m Metrics
	runtime.GOMAXPROCS(1)
	base := m.handleShard(0)
	for _, w := range []int{1, 2, 7, metricsShards + 3} {
		if m.handleShard(w) != base {
			t.Errorf("GOMAXPROCS=1: worker %d routed off shard 0", w)
		}
	}

	runtime.GOMAXPROCS(2)
	if m.handleShard(1) == base {
		t.Error("GOMAXPROCS=2: worker 1 still on shard 0 — contention sharding disabled")
	}
	if m.handleShard(0) != base {
		t.Error("GOMAXPROCS=2: worker 0 moved off shard 0")
	}

	// Totals are routing-independent: counts landed on any shard must all
	// surface in Snapshot.
	m.handleShard(0).inserts.Add(2)
	m.handleShard(5).inserts.Add(3)
	if got := m.Snapshot().Inserts; got != 5 {
		t.Errorf("Snapshot.Inserts = %d, want 5", got)
	}
}
