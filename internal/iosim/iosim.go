// Package iosim provides an in-memory partition store with exact byte
// accounting, standing in for the disk and memory-cached files of the
// paper's evaluation. Experiments charge IO time against the store's byte
// counters using costmodel bandwidths, so the Case 1 (memory-cached,
// IO ≪ compute) and Case 2 (disk, IO > compute) regimes of §IV-B reproduce
// deterministically on any host.
package iosim

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"parahash/internal/costmodel"
	"parahash/internal/store"
)

// ErrNotFound reports an absent file. It aliases store.ErrNotFound so code
// written against the PartitionStore interface classifies missing files
// identically for both stores: a missing file is deterministic, so the
// resilient pipeline treats it as non-retryable.
var ErrNotFound = store.ErrNotFound

// fault is one scripted IO fault. remaining < 0 means the fault fires on
// every access (the original persistent hooks); remaining > 0 counts down a
// transient fail-N-then-succeed fault.
type fault struct {
	err       error
	remaining int
}

// take reports whether the fault fires for this access and consumes one
// shot of a transient fault.
func (f *fault) take() bool {
	if f == nil || f.remaining == 0 {
		return false
	}
	if f.remaining > 0 {
		f.remaining--
	}
	return true
}

// Store is a named collection of in-memory files with byte accounting,
// implementing store.PartitionStore. All methods are safe for concurrent
// use.
type Store struct {
	// Medium tags the store with the IO device it models.
	Medium costmodel.Medium

	mu           sync.Mutex
	files        map[string]*bytes.Buffer
	bytesRead    int64
	bytesWritten int64
	writeFaults  map[string]*fault
	readFaults   map[string]*fault
	corruptions  map[string]int
}

var _ store.PartitionStore = (*Store)(nil)

// NewStore creates an empty store modelling the given medium.
func NewStore(m costmodel.Medium) *Store {
	return &Store{Medium: m, files: make(map[string]*bytes.Buffer)}
}

// Create opens a new version of a named file for writing. Matching the
// atomic-publish contract of store.PartitionStore, the written bytes become
// observable — replacing any previous content — only when Close succeeds;
// until then Open/Size/List serve the prior version (or ErrNotFound).
// Create itself never fails for the in-memory store; the error return
// satisfies the interface, whose durable implementations can fail here.
func (s *Store) Create(name string) (io.WriteCloser, error) {
	return &countingWriter{store: s, buf: &bytes.Buffer{}, name: name}, nil
}

// Open returns a reader over a file's current content. The content is
// copied at open time, so concurrent writers do not disturb readers, and a
// scripted read fault (FailReadsNTimes) charges its budget exactly once per
// Open — never per Read call on the returned snapshot reader.
func (s *Store) Open(name string) (io.Reader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.readFaults[name]; f.take() {
		return nil, fmt.Errorf("iosim: reading %q: %w", name, f.err)
	}
	buf, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	data := make([]byte, buf.Len())
	copy(data, buf.Bytes())
	if n := s.corruptions[name]; n != 0 && len(data) > 0 {
		// Flip one bit in the middle of the served copy; the stored file
		// stays intact, so a re-read after integrity detection recovers.
		data[len(data)/2] ^= 0x01
		if n > 0 {
			if n--; n == 0 {
				delete(s.corruptions, name)
			} else {
				s.corruptions[name] = n
			}
		}
	}
	s.bytesRead += int64(len(data))
	return bytes.NewReader(data), nil
}

// Size returns a file's byte size, or an error if absent.
func (s *Store) Size(name string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return int64(buf.Len()), nil
}

// Remove deletes a file if present; removing an absent file is not an
// error.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, name)
	return nil
}

// List returns the stored file names, sorted.
func (s *Store) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// TotalBytes returns the sum of all file sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, buf := range s.files {
		total += int64(buf.Len())
	}
	return total
}

// BytesRead returns the cumulative bytes served to readers.
func (s *Store) BytesRead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesRead
}

// BytesWritten returns the cumulative bytes accepted from writers.
func (s *Store) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesWritten
}

// ReadSeconds charges the given byte volume as a read on this medium.
func (s *Store) ReadSeconds(cal costmodel.Calibration, bytes int64) float64 {
	return cal.ReadSeconds(s.Medium, bytes)
}

// WriteSeconds charges the given byte volume as a write on this medium.
func (s *Store) WriteSeconds(cal costmodel.Calibration, bytes int64) float64 {
	return cal.WriteSeconds(s.Medium, bytes)
}

type countingWriter struct {
	store  *Store
	buf    *bytes.Buffer
	name   string
	closed bool
}

// Write appends to the in-flight (unpublished) buffer under the store lock.
func (w *countingWriter) Write(p []byte) (int, error) {
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	if f := w.store.writeFaults[w.name]; f.take() {
		return 0, fmt.Errorf("iosim: writing %q: %w", w.name, f.err)
	}
	n, err := w.buf.Write(p)
	w.store.bytesWritten += int64(n)
	return n, err
}

// Close publishes the written bytes under the file's name, atomically
// replacing any previous content — the in-memory analogue of diskstore's
// fsync-and-rename. Closing twice is a no-op.
func (w *countingWriter) Close() error {
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	w.store.files[w.name] = w.buf
	return nil
}

// Fault injection: experiments and tests use these hooks to verify that
// pipeline stages surface IO failures cleanly instead of wedging.

// FailWritesOn makes every Write to the named file (existing or future)
// return err. Passing a nil error clears the fault.
func (s *Store) FailWritesOn(name string, err error) {
	s.setFault(&s.writeFaults, name, -1, err)
}

// FailReadsOn makes every Open of the named file return err.
func (s *Store) FailReadsOn(name string, err error) {
	s.setFault(&s.readFaults, name, -1, err)
}

// FailWritesNTimes makes the next n Writes to the named file return err,
// then lets writes succeed again — a transient fail-N-then-succeed fault.
func (s *Store) FailWritesNTimes(name string, n int, err error) {
	s.setFault(&s.writeFaults, name, n, err)
}

// FailReadsNTimes makes the next n Opens of the named file return err, then
// lets reads succeed again.
func (s *Store) FailReadsNTimes(name string, n int, err error) {
	s.setFault(&s.readFaults, name, n, err)
}

// CorruptReadsNTimes makes the next n Opens of the named file serve a copy
// with one bit flipped; negative n corrupts every Open. The stored bytes
// are untouched, so a reader that detects the corruption (e.g. via the msp
// integrity footer) recovers by re-reading — unless the corruption is
// persistent. n = 0 clears the fault.
func (s *Store) CorruptReadsNTimes(name string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.corruptions == nil {
		s.corruptions = make(map[string]int)
	}
	if n == 0 {
		delete(s.corruptions, name)
		return
	}
	s.corruptions[name] = n
}

// setFault installs or clears a fault in the given map. n < 0 is
// persistent; a nil error clears.
func (s *Store) setFault(m *map[string]*fault, name string, n int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if *m == nil {
		*m = make(map[string]*fault)
	}
	if err == nil || n == 0 {
		delete(*m, name)
		return
	}
	(*m)[name] = &fault{err: err, remaining: n}
}
