// Command bench measures the hot-path overhaul — rolling canonicalization,
// the zero-allocation scanner, kmer-weighted Step 2 claiming, and sharded
// table counters — against emulations of the pre-overhaul implementations,
// plus the in-core vs out-of-core Step 2 head-to-head, and writes the
// results to a JSON report (BENCH_hotpath.json at the repo root).
// Regenerate with:
//
//	go run ./cmd/bench -out BENCH_hotpath.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parahash/internal/costmodel"
	"parahash/internal/device"
	"parahash/internal/dna"
	"parahash/internal/graph"
	"parahash/internal/hashtable"
	"parahash/internal/iosim"
	"parahash/internal/msp"
)

// Report is the JSON schema of BENCH_hotpath.json.
type Report struct {
	Schema string `json:"schema"`
	// HostCPUs records the measuring machine's core count: the scheduling
	// and counter-sharding wall-clock deltas only manifest with real
	// parallelism, so single-core hosts should expect ~1x there while the
	// imbalance figures still capture the scheduling improvement.
	HostCPUs int `json:"host_cpus"`
	// GOMAXPROCS is the scheduler-processor count the measurements actually
	// ran under. Worker counts are clamped to it (a goroutine beyond the
	// processor count measures scheduler churn, not parallel insertion), so
	// every multi-worker figure in this report is backed by at most this
	// much real concurrency.
	GOMAXPROCS       int                  `json:"gomaxprocs"`
	Canonicalization CanonicalizationPart `json:"canonicalization"`
	Scanner          ScannerPart          `json:"scanner"`
	Step2            Step2Part            `json:"step2"`
	Counters         CountersPart         `json:"counters"`
	TableBackends    TableBackendsPart    `json:"table_backends"`
	OutOfCore        OutOfCorePart        `json:"out_of_core"`
}

// CanonicalizationPart compares per-kmer canonical orientation costs: the
// pre-overhaul form re-derived each k-mer's reverse complement with an
// O(k) base loop; the overhauled form maintains it as a rolling window.
type CanonicalizationPart struct {
	K               int     `json:"k"`
	BeforeNsPerKmer float64 `json:"before_ns_per_kmer"`
	AfterNsPerKmer  float64 `json:"after_ns_per_kmer"`
	Speedup         float64 `json:"speedup"`
	// The reverse-complement primitive alone: O(k) loop vs bit tricks.
	RCBeforeNs float64 `json:"rc_before_ns"`
	RCAfterNs  float64 `json:"rc_after_ns"`
	RCSpeedup  float64 `json:"rc_speedup"`
}

// ScannerPart reports the warmed Step 1 scanner's per-base cost and
// allocation count per read (the overhaul's target is 0).
type ScannerPart struct {
	NsPerBase     float64 `json:"ns_per_base"`
	AllocsPerRead float64 `json:"allocs_per_read"`
}

// Step2Part compares the full Step 2 kernel — insert, collect, sort — as
// the seed ran it (index-striped superkmer split, sequential vertex sort)
// against the overhauled form (kmer-weighted chunk claiming, parallel
// merge sort) on a skewed partition.
type Step2Part struct {
	RequestedWorkers int `json:"requested_workers"`
	EffectiveWorkers int `json:"effective_workers"`
	// Degraded flags a clamped run: fewer scheduler processors than
	// requested workers, so the parallel figures understate what a machine
	// with that many cores would measure.
	Degraded bool `json:"degraded"`
	// Authoritative marks the before/after comparison as trustworthy. On a
	// degraded host the comparison is skipped entirely (before_seconds and
	// speedup are zero) rather than recorded: a clamped run once produced a
	// 0.83x "regression" that was scheduler starvation, not the code.
	Authoritative bool    `json:"authoritative"`
	Superkmers    int     `json:"superkmers"`
	Kmers         int64   `json:"kmers"`
	Distinct      int     `json:"distinct"`
	BeforeSeconds float64 `json:"before_seconds"`
	AfterSeconds  float64 `json:"after_seconds"`
	Speedup       float64 `json:"speedup"`
	// The max/mean per-worker k-mer weight of each split — the makespan
	// ratio an idealised machine with Workers real cores would see. The
	// striped figure is the static assignment's; the chunked figure
	// simulates claim-when-free list scheduling of the weighted chunks.
	StripedImbalance float64 `json:"striped_imbalance"`
	ChunkedImbalance float64 `json:"chunked_imbalance"`
}

// CountersPart compares parallel inserts with every worker funnelling
// through one metrics shard (the pre-overhaul shared atomics) against
// per-worker shards.
type CountersPart struct {
	RequestedWorkers int  `json:"requested_workers"`
	EffectiveWorkers int  `json:"effective_workers"`
	Degraded         bool `json:"degraded"`
	// Authoritative is false when the host clamped the workers or routed
	// every handle through one shard: the variants still measure, but the
	// speedup is not a statement about the sharding change.
	Authoritative bool `json:"authoritative"`
	// SingleProcFastPath records that GOMAXPROCS=1 routed every handle to
	// one shard (the uncontended fast path), making the two variants
	// physically identical — expect speedup ~1.0, not the old 0.88 penalty.
	SingleProcFastPath bool    `json:"single_proc_fast_path"`
	SharedNsPerEdge    float64 `json:"shared_shard_ns_per_edge"`
	ShardedNsPerEdge   float64 `json:"sharded_ns_per_edge"`
	Speedup            float64 `json:"speedup"`
}

// TableBackendsPart is the multi-worker head-to-head across the KmerTable
// backends: the same duplicate-heavy edge workload inserted by 1/2/4/8
// workers into each backend. Worker counts are clamped to GOMAXPROCS and
// every run records what it actually got, so single-core reruns stay honest
// (degraded=true) instead of reporting fictional parallelism.
type TableBackendsPart struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	HostCPUs   int `json:"host_cpus"`
	// Oversubscribed flags GOMAXPROCS raised above the physical core count:
	// the workers are real concurrent goroutines but time-share cores, so
	// contention effects are visible while absolute scaling is pessimistic.
	Oversubscribed bool         `json:"oversubscribed"`
	Edges          int          `json:"edges"`
	Distinct       int          `json:"distinct"`
	Runs           []BackendRun `json:"runs"`
}

// BackendRun is one backend × worker-count measurement.
type BackendRun struct {
	Backend          string `json:"backend"`
	RequestedWorkers int    `json:"requested_workers"`
	EffectiveWorkers int    `json:"effective_workers"`
	Degraded         bool   `json:"degraded"`
	// NsPerEdge is wall-clock nanoseconds per inserted edge (best of three
	// alternated rounds).
	NsPerEdge float64 `json:"ns_per_edge"`
	// ProbesPerEdge is the backend's mean probe-walk length per access.
	ProbesPerEdge float64 `json:"probes_per_edge"`
	// MaxMeanImbalance is the max/mean per-worker busy time of the best
	// round — 1.0 is perfect balance; the sharded backend's value shows
	// whether hash-partitioned routing skews worker load.
	MaxMeanImbalance float64 `json:"max_mean_imbalance"`
}

// OutOfCorePart is the in-core vs out-of-core Step 2 head-to-head on the
// same skewed partition: a hash-table construction against the sort-merge
// spill path under a run buffer far smaller than the table it replaces.
// Both run single-threaded so the figure is algorithm overhead, not
// parallelism. The out-of-core path is expected to cost more per k-mer —
// the report records how much RAM that price buys back.
type OutOfCorePart struct {
	K          int   `json:"k"`
	Superkmers int   `json:"superkmers"`
	Kmers      int64 `json:"kmers"`
	Distinct   int   `json:"distinct"`
	// TableBytes is the in-core table allocation the spill path avoids;
	// RunBufferBytes is the bounded residency it holds instead.
	TableBytes     int64 `json:"table_bytes"`
	RunBufferBytes int64 `json:"run_buffer_bytes"`
	SpillRuns      int64 `json:"spill_runs"`
	SpilledBytes   int64 `json:"spilled_bytes"`
	MergePasses    int64 `json:"merge_passes"`
	// Identical records that the two paths produced the same sorted graph —
	// the numbers are only comparable if the outputs are.
	Identical          bool    `json:"identical"`
	InCoreNsPerKmer    float64 `json:"in_core_ns_per_kmer"`
	OutOfCoreNsPerKmer float64 `json:"out_of_core_ns_per_kmer"`
	// Overhead is out-of-core / in-core time (>= 1 in the expected case).
	Overhead float64 `json:"overhead"`
}

// effectiveWorkers clamps a requested worker count to the scheduler
// processors actually available.
func effectiveWorkers(requested int) (effective int, degraded bool) {
	mp := runtime.GOMAXPROCS(0)
	if requested > mp {
		return mp, true
	}
	return requested, false
}

// config sizes the measurement; the test uses a tiny variant.
type config struct {
	minDur   time.Duration // per-measurement wall budget
	reads    int           // scanner/canonicalization read count
	readLen  int
	smallSks int // Step 2 skewed partition shape
	giantSks int
	giantLen int
	edges    int // counter benchmark edge count
}

func defaultConfig() config {
	return config{
		minDur:   300 * time.Millisecond,
		reads:    200,
		readLen:  151,
		smallSks: 2048,
		giantSks: 16,
		giantLen: 2000,
		edges:    1 << 17,
	}
}

// timeIt runs fn in batches until minDur has elapsed and returns the mean
// nanoseconds per call.
func timeIt(minDur time.Duration, fn func()) float64 {
	fn() // warm-up
	var n int64
	var elapsed time.Duration
	batch := 1
	for elapsed < minDur {
		start := time.Now()
		for i := 0; i < batch; i++ {
			fn()
		}
		elapsed += time.Since(start)
		n += int64(batch)
		if batch < 1<<20 {
			batch *= 2
		}
	}
	return float64(elapsed.Nanoseconds()) / float64(n)
}

func randomReads(rng *rand.Rand, n, l int) [][]dna.Base {
	reads := make([][]dna.Base, n)
	for i := range reads {
		r := make([]dna.Base, l)
		for j := range r {
			r[j] = dna.Base(rng.Intn(4))
		}
		reads[i] = r
	}
	return reads
}

func measureCanonicalization(cfg config) CanonicalizationPart {
	const k, p = 27, 11
	rng := rand.New(rand.NewSource(1))
	var sks []msp.Superkmer
	var kmers int64
	for _, r := range randomReads(rng, cfg.reads, cfg.readLen) {
		sks = msp.SuperkmersFromRead(sks, r, k, p)
	}
	for _, sk := range sks {
		kmers += int64(sk.NumKmers(k))
	}

	var sink int64
	// Before: the seed enumerator re-derived each k-mer's canonical form
	// with the O(k) reverse-complement loop.
	before := timeIt(cfg.minDur, func() {
		for _, sk := range sks {
			n := sk.NumKmers(k)
			km := dna.KmerFromBases(sk.Bases, k)
			for t := 0; t < n; t++ {
				if t > 0 {
					km = km.AppendBase(sk.Bases[t+k-1], k)
				}
				rc := km.ReverseComplementNaive(k)
				if rc.Less(km) {
					sink += int64(rc.Lo)
				} else {
					sink += int64(km.Lo)
				}
			}
		}
	}) / float64(kmers)
	after := timeIt(cfg.minDur, func() {
		for _, sk := range sks {
			msp.ForEachKmerEdge(sk, k, func(e msp.KmerEdge) { sink += int64(e.Canon.Lo) })
		}
	}) / float64(kmers)

	km := dna.KmerFromBases(randomReads(rng, 1, k)[0], k)
	rcBefore := timeIt(cfg.minDur, func() { km = km.ReverseComplementNaive(k) })
	rcAfter := timeIt(cfg.minDur, func() { km = km.ReverseComplement(k) })
	_ = sink

	return CanonicalizationPart{
		K:               k,
		BeforeNsPerKmer: before,
		AfterNsPerKmer:  after,
		Speedup:         before / after,
		RCBeforeNs:      rcBefore,
		RCAfterNs:       rcAfter,
		RCSpeedup:       rcBefore / rcAfter,
	}
}

func measureScanner(cfg config) ScannerPart {
	const k, p = 27, 11
	rng := rand.New(rand.NewSource(2))
	reads := randomReads(rng, cfg.reads, cfg.readLen)
	sc := &msp.Scanner{K: k, P: p, NumPartitions: 512}
	dst := make([]msp.Superkmer, 0, 256)
	for _, r := range reads {
		dst = sc.Superkmers(dst[:0], r) // warm the scratch
	}
	bases := int64(cfg.reads) * int64(cfg.readLen)
	ns := timeIt(cfg.minDur, func() {
		for _, r := range reads {
			dst = sc.Superkmers(dst[:0], r)
		}
	}) / float64(bases)
	allocs := testing.AllocsPerRun(100, func() {
		dst = sc.Superkmers(dst[:0], reads[0])
	})
	return ScannerPart{NsPerBase: ns, AllocsPerRead: allocs}
}

// skewedPartition builds a partition whose k-mer mass concentrates in a few
// giant superkmers (low-complexity regions produce exactly this shape) so
// that a split balancing record counts, not k-mer counts, idles workers.
func skewedPartition(cfg config, k int) ([]msp.Superkmer, int64) {
	rng := rand.New(rand.NewSource(3))
	sks := make([]msp.Superkmer, 0, cfg.smallSks+cfg.giantSks)
	mk := func(l int) msp.Superkmer {
		b := make([]dna.Base, l)
		for j := range b {
			b[j] = dna.Base(rng.Intn(4))
		}
		return msp.Superkmer{Bases: b, Minimizer: rng.Uint64()}
	}
	for i := 0; i < cfg.smallSks; i++ {
		sks = append(sks, mk(k+rng.Intn(8)))
	}
	for i := 0; i < cfg.giantSks; i++ {
		sks = append(sks, mk(cfg.giantLen+k-1))
	}
	rng.Shuffle(len(sks), func(i, j int) { sks[i], sks[j] = sks[j], sks[i] })
	var kmers int64
	for _, sk := range sks {
		kmers += int64(sk.NumKmers(k))
	}
	return sks, kmers
}

func insertRange(tab *hashtable.Table, worker int, sks []msp.Superkmer, k int) error {
	ins := tab.Inserter(worker)
	var firstErr error
	for _, sk := range sks {
		msp.ForEachKmerEdge(sk, k, func(e msp.KmerEdge) {
			if err := ins.InsertEdge(e); err != nil && firstErr == nil {
				firstErr = err
			}
		})
		if firstErr != nil {
			return firstErr
		}
	}
	return firstErr
}

func measureStep2(cfg config) (Step2Part, error) {
	const k = 27
	const requestedWorkers = 8
	workers, degraded := effectiveWorkers(requestedWorkers)
	sks, kmers := skewedPartition(cfg, k)
	slots := int(float64(kmers) / 0.65) // random kmers are ~all distinct; size for load factor directly
	tab, err := hashtable.New(k, slots)
	if err != nil {
		return Step2Part{}, err
	}
	var insErr atomic.Value
	vbuf := make([]graph.Vertex, 0, slots)
	collect := func() []graph.Vertex {
		vs := vbuf[:0]
		tab.ForEach(func(e hashtable.Entry) {
			vs = append(vs, graph.Vertex{Kmer: e.Kmer, Counts: e.Counts})
		})
		return vs
	}
	// The parallel sort pays for itself only with real cores behind it —
	// the same clamp the Step 2 kernel applies.
	sortWorkers := workers
	if mp := runtime.GOMAXPROCS(0); sortWorkers > mp {
		sortWorkers = mp
	}

	// Before: index-striped split — worker w processes records w, w+T,
	// w+2T, ... — followed by the sequential vertex sort.
	runBefore := func() float64 {
		return timeIt(cfg.minDur, func() {
			tab.Reset()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ins := tab.Inserter(w)
					for i := w; i < len(sks); i += workers {
						msp.ForEachKmerEdge(sks[i], k, func(e msp.KmerEdge) {
							if err := ins.InsertEdge(e); err != nil {
								insErr.Store(err)
							}
						})
					}
				}(w)
			}
			wg.Wait()
			g := &graph.Subgraph{K: k, Vertices: collect()}
			g.Sort()
		})
	}

	// After: kmer-weighted chunks claimed from an atomic cursor plus the
	// parallel merge sort (the device.CPU Step 2 strategy).
	grain := kmers / int64(workers*8)
	if grain < 1 {
		grain = 1
	}
	var ends []int
	var acc int64
	for i := range sks {
		acc += int64(sks[i].NumKmers(k))
		if acc >= grain {
			ends = append(ends, i+1)
			acc = 0
		}
	}
	if n := len(sks); n > 0 && (len(ends) == 0 || ends[len(ends)-1] != n) {
		ends = append(ends, n)
	}
	runAfter := func() float64 {
		return timeIt(cfg.minDur, func() {
			tab.Reset()
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						ci := int(cursor.Add(1)) - 1
						if ci >= len(ends) {
							return
						}
						lo := 0
						if ci > 0 {
							lo = ends[ci-1]
						}
						if err := insertRange(tab, w, sks[lo:ends[ci]], k); err != nil {
							insErr.Store(err)
						}
					}
				}(w)
			}
			wg.Wait()
			g := &graph.Subgraph{K: k, Vertices: collect()}
			g.SortParallel(sortWorkers)
		})
	}
	// Alternate the two variants and keep each one's best run, so drift on
	// a shared host cannot bias the comparison. On a degraded host the
	// before-variant is not run at all: a clamped comparison reads like a
	// regression (a recorded 0.83x was pure scheduler starvation), so the
	// report carries only the current kernel's figure, unflattered and
	// unflattering to nothing.
	before, after := math.Inf(1), math.Inf(1)
	for round := 0; round < 3; round++ {
		if !degraded {
			before = math.Min(before, runBefore())
		}
		after = math.Min(after, runAfter())
	}
	if err, _ := insErr.Load().(error); err != nil {
		return Step2Part{}, err
	}
	part := Step2Part{
		RequestedWorkers: requestedWorkers,
		EffectiveWorkers: workers,
		Degraded:         degraded,
		Authoritative:    !degraded,
		Superkmers:       len(sks),
		Kmers:            kmers,
		Distinct:         tab.Len(),
		AfterSeconds:     after / 1e9,
		StripedImbalance: stripedImbalance(sks, k, workers),
		ChunkedImbalance: chunkedImbalance(sks, ends, k, workers),
	}
	if !degraded {
		part.BeforeSeconds = before / 1e9
		part.Speedup = before / after
	}
	return part, nil
}

// stripedImbalance returns max/mean per-worker k-mer weight under the
// former static index-striped split.
func stripedImbalance(sks []msp.Superkmer, k, workers int) float64 {
	loads := make([]int64, workers)
	for i := range sks {
		loads[i%workers] += int64(sks[i].NumKmers(k))
	}
	return maxMean(loads)
}

// chunkedImbalance returns max/mean per-worker k-mer weight when the
// weighted chunks are claimed in order by whichever worker frees first
// (greedy list scheduling — what the atomic cursor realises with equal-
// speed workers).
func chunkedImbalance(sks []msp.Superkmer, ends []int, k, workers int) float64 {
	loads := make([]int64, workers)
	lo := 0
	for _, end := range ends {
		var w int64
		for _, sk := range sks[lo:end] {
			w += int64(sk.NumKmers(k))
		}
		lo = end
		min := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += w
	}
	return maxMean(loads)
}

func maxMean(loads []int64) float64 {
	var max, sum int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(loads)) / float64(sum)
}

func measureCounters(cfg config) (CountersPart, error) {
	const k = 27
	const requestedWorkers = 8
	workers, degraded := effectiveWorkers(requestedWorkers)
	rng := rand.New(rand.NewSource(4))
	pool := make([]dna.Kmer, 1<<14)
	for i := range pool {
		b := make([]dna.Base, k)
		for j := range b {
			b[j] = dna.Base(rng.Intn(4))
		}
		pool[i], _ = dna.KmerFromBases(b, k).Canonical(k)
	}
	edges := make([]msp.KmerEdge, cfg.edges)
	for i := range edges {
		edges[i] = msp.KmerEdge{
			Canon: pool[rng.Intn(len(pool))],
			Left:  int8(rng.Intn(4)),
			Right: int8(rng.Intn(4)),
		}
	}
	tab, err := hashtable.New(k, int(float64(len(edges))/0.65))
	if err != nil {
		return CountersPart{}, err
	}
	var insErr atomic.Value
	run := func(sharded bool) float64 {
		return timeIt(cfg.minDur, func() {
			tab.Reset()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					shard := 0
					if sharded {
						shard = w
					}
					ins := tab.Inserter(shard)
					for i := w; i < len(edges); i += workers {
						if err := ins.InsertEdge(edges[i]); err != nil {
							insErr.Store(err)
						}
					}
				}(w)
			}
			wg.Wait()
		}) / float64(len(edges))
	}
	// Alternate variants, keep each one's best run (same rationale as the
	// Step 2 comparison).
	shared, sharded := math.Inf(1), math.Inf(1)
	for round := 0; round < 3; round++ {
		shared = math.Min(shared, run(false))
		sharded = math.Min(sharded, run(true))
	}
	if err, _ := insErr.Load().(error); err != nil {
		return CountersPart{}, err
	}
	fastPath := runtime.GOMAXPROCS(0) == 1
	return CountersPart{
		RequestedWorkers:   requestedWorkers,
		EffectiveWorkers:   workers,
		Degraded:           degraded,
		Authoritative:      !degraded && !fastPath,
		SingleProcFastPath: fastPath,
		SharedNsPerEdge:    shared,
		ShardedNsPerEdge:   sharded,
		Speedup:            shared / sharded,
	}, nil
}

// backendEdges builds the duplicate-heavy canonical edge workload shared by
// every backend run, so the head-to-head compares tables, not inputs.
func backendEdges(cfg config, k int) []msp.KmerEdge {
	rng := rand.New(rand.NewSource(5))
	pool := make([]dna.Kmer, 1<<14)
	for i := range pool {
		b := make([]dna.Base, k)
		for j := range b {
			b[j] = dna.Base(rng.Intn(4))
		}
		pool[i], _ = dna.KmerFromBases(b, k).Canonical(k)
	}
	edges := make([]msp.KmerEdge, cfg.edges)
	for i := range edges {
		edges[i] = msp.KmerEdge{
			Canon: pool[rng.Intn(len(pool))],
			Left:  int8(rng.Intn(4)),
			Right: int8(rng.Intn(4)),
		}
	}
	return edges
}

// runBackendOnce inserts every edge with the given worker count and returns
// the wall time plus each worker's busy time.
func runBackendOnce(tab hashtable.KmerTable, edges []msp.KmerEdge, workers int, insErr *atomic.Value) (time.Duration, []time.Duration) {
	tab.Reset()
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ins := tab.Inserter(w)
			t0 := time.Now()
			for i := w; i < len(edges); i += workers {
				if err := ins.InsertEdge(edges[i]); err != nil {
					insErr.Store(err)
				}
			}
			busy[w] = time.Since(t0)
		}(w)
	}
	wg.Wait()
	return time.Since(start), busy
}

// measureTableBackends runs the same edge workload through every KmerTable
// backend at 1/2/4/8 requested workers, recording per-edge wall time, probe
// walks and worker busy-time imbalance for each combination.
func measureTableBackends(cfg config) (TableBackendsPart, error) {
	const k = 27
	edges := backendEdges(cfg, k)
	slots := int(float64(len(edges)) / 0.65)
	part := TableBackendsPart{
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		HostCPUs:       runtime.NumCPU(),
		Oversubscribed: runtime.GOMAXPROCS(0) > runtime.NumCPU(),
		Edges:          len(edges),
	}
	for _, b := range hashtable.Backends() {
		tab, err := hashtable.NewBackend(b, k, slots)
		if err != nil {
			return part, err
		}
		for _, requested := range []int{1, 2, 4, 8} {
			workers, degraded := effectiveWorkers(requested)
			var insErr atomic.Value
			best := BackendRun{
				Backend:          string(b),
				RequestedWorkers: requested,
				EffectiveWorkers: workers,
				Degraded:         degraded,
				NsPerEdge:        math.Inf(1),
			}
			// Repeat full passes until the per-measurement budget is spent,
			// keeping the best round (same drift defence as the other parts).
			var elapsed time.Duration
			for elapsed < cfg.minDur {
				wall, busy := runBackendOnce(tab, edges, workers, &insErr)
				elapsed += wall
				if ns := float64(wall.Nanoseconds()) / float64(len(edges)); ns < best.NsPerEdge {
					best.NsPerEdge = ns
					best.MaxMeanImbalance = maxMeanDur(busy)
				}
			}
			if err, _ := insErr.Load().(error); err != nil {
				return part, err
			}
			m := tab.Metrics().Snapshot()
			if accesses := m.Inserts + m.Updates; accesses > 0 {
				best.ProbesPerEdge = float64(m.Probes) / float64(accesses)
			}
			part.Distinct = tab.Len()
			part.Runs = append(part.Runs, best)
		}
	}
	return part, nil
}

// measureOutOfCore runs the same skewed partition through the in-core
// hash-table kernel and the sort-merge spill path, best of three alternated
// rounds each. The spill path gets a run buffer sized at 1/16 of the table
// it replaces (floored at 4 KiB) so the measurement reflects a genuinely
// memory-constrained configuration with real merge fan-in, not a buffer
// that happens to hold the whole partition.
func measureOutOfCore(cfg config) (OutOfCorePart, error) {
	const k = 27
	sks, kmers := skewedPartition(cfg, k)
	slots := int(float64(kmers) / 0.65)
	tableBytes := hashtable.MemoryBytesFor(slots)
	bufferBytes := tableBytes / 16
	if bufferBytes < 4<<10 {
		bufferBytes = 4 << 10
	}

	tab, err := hashtable.New(k, slots)
	if err != nil {
		return OutOfCorePart{}, err
	}
	runInCore := func() (*graph.Subgraph, time.Duration, error) {
		start := time.Now()
		tab.Reset()
		if err := insertRange(tab, 0, sks, k); err != nil {
			return nil, 0, err
		}
		vs := make([]graph.Vertex, 0, tab.Len())
		tab.ForEach(func(e hashtable.Entry) {
			vs = append(vs, graph.Vertex{Kmer: e.Kmer, Counts: e.Counts})
		})
		g := &graph.Subgraph{K: k, Vertices: vs}
		g.Sort()
		return g, time.Since(start), nil
	}
	runOutOfCore := func() (*graph.Subgraph, device.Step2Output, time.Duration, error) {
		// A fresh store each round: runs are the round's scratch, and stale
		// intermediates from a previous round must not alias.
		ecfg := device.ExternalConfig{
			K:           k,
			BufferBytes: bufferBytes,
			SortWorkers: 1,
			Store:       iosim.NewStore(costmodel.MediumMemCached),
			RunName:     func(run int) string { return fmt.Sprintf("spill/0000/run-%04d", run) },
			Cal:         costmodel.DefaultCalibration(),
			Threads:     1,
		}
		start := time.Now()
		out, _, passes, err := device.ExternalStep2(context.Background(), sks, ecfg)
		if err != nil {
			return nil, out, 0, err
		}
		out.MergePasses = passes
		return out.Graph, out, time.Since(start), nil
	}

	part := OutOfCorePart{
		K:              k,
		Superkmers:     len(sks),
		Kmers:          kmers,
		TableBytes:     tableBytes,
		RunBufferBytes: bufferBytes,
	}
	inBest, outBest := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
	var inGraph, outGraph *graph.Subgraph
	for round := 0; round < 3; round++ {
		g, d, err := runInCore()
		if err != nil {
			return part, err
		}
		if d < inBest {
			inBest = d
		}
		inGraph = g
		og, out, d, err := runOutOfCore()
		if err != nil {
			return part, err
		}
		if d < outBest {
			outBest = d
		}
		outGraph = og
		part.SpillRuns = out.SpillRuns
		part.SpilledBytes = out.SpillBytes
		part.MergePasses = out.MergePasses
		part.Distinct = int(out.Distinct)
	}
	part.Identical = outGraph.Equal(inGraph)
	if !part.Identical {
		return part, fmt.Errorf("out-of-core graph differs from in-core (%d vs %d vertices)",
			outGraph.NumVertices(), inGraph.NumVertices())
	}
	part.InCoreNsPerKmer = float64(inBest.Nanoseconds()) / float64(kmers)
	part.OutOfCoreNsPerKmer = float64(outBest.Nanoseconds()) / float64(kmers)
	part.Overhead = part.OutOfCoreNsPerKmer / part.InCoreNsPerKmer
	return part, nil
}

func maxMeanDur(busy []time.Duration) float64 {
	loads := make([]int64, len(busy))
	for i, d := range busy {
		loads[i] = d.Nanoseconds()
	}
	return maxMean(loads)
}

func measureAll(cfg config) (Report, error) {
	rep := Report{
		Schema:     "parahash.bench_hotpath/v3",
		HostCPUs:   runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	rep.Canonicalization = measureCanonicalization(cfg)
	rep.Scanner = measureScanner(cfg)
	s2, err := measureStep2(cfg)
	if err != nil {
		return rep, err
	}
	rep.Step2 = s2
	ctr, err := measureCounters(cfg)
	if err != nil {
		return rep, err
	}
	rep.Counters = ctr
	tb, err := measureTableBackends(cfg)
	if err != nil {
		return rep, err
	}
	rep.TableBackends = tb
	oc, err := measureOutOfCore(cfg)
	if err != nil {
		return rep, err
	}
	rep.OutOfCore = oc
	return rep, nil
}

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "report output path")
	flag.Parse()
	rep, err := measureAll(defaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("canonicalization: %.1f -> %.1f ns/kmer (%.1fx); RC %.1f -> %.1f ns (%.1fx)\n",
		rep.Canonicalization.BeforeNsPerKmer, rep.Canonicalization.AfterNsPerKmer, rep.Canonicalization.Speedup,
		rep.Canonicalization.RCBeforeNs, rep.Canonicalization.RCAfterNs, rep.Canonicalization.RCSpeedup)
	fmt.Printf("scanner: %.2f ns/base, %.0f allocs/read\n", rep.Scanner.NsPerBase, rep.Scanner.AllocsPerRead)
	if rep.Step2.Authoritative {
		fmt.Printf("step2 kernel: %.4fs -> %.4fs (%.2fx); imbalance %.2f -> %.2f max/mean\n",
			rep.Step2.BeforeSeconds, rep.Step2.AfterSeconds, rep.Step2.Speedup,
			rep.Step2.StripedImbalance, rep.Step2.ChunkedImbalance)
	} else {
		fmt.Printf("step2 kernel: %.4fs (degraded host — before/after comparison skipped); imbalance %.2f -> %.2f max/mean\n",
			rep.Step2.AfterSeconds, rep.Step2.StripedImbalance, rep.Step2.ChunkedImbalance)
	}
	fmt.Printf("counters: %.1f -> %.1f ns/edge (%.2fx)\n",
		rep.Counters.SharedNsPerEdge, rep.Counters.ShardedNsPerEdge, rep.Counters.Speedup)
	tb := rep.TableBackends
	fmt.Printf("table backends (GOMAXPROCS=%d, host CPUs=%d, oversubscribed=%v):\n",
		tb.GOMAXPROCS, tb.HostCPUs, tb.Oversubscribed)
	for _, r := range tb.Runs {
		fmt.Printf("  %-14s workers %d/%d: %.1f ns/edge, %.2f probes/edge, %.2f max/mean",
			r.Backend, r.EffectiveWorkers, r.RequestedWorkers, r.NsPerEdge, r.ProbesPerEdge, r.MaxMeanImbalance)
		if r.Degraded {
			fmt.Print("  (degraded: clamped to GOMAXPROCS)")
		}
		fmt.Println()
	}
	oc := rep.OutOfCore
	fmt.Printf("out-of-core step2: %.1f -> %.1f ns/kmer (%.2fx overhead); %d runs, %d merge passes, table %d B vs buffer %d B\n",
		oc.InCoreNsPerKmer, oc.OutOfCoreNsPerKmer, oc.Overhead,
		oc.SpillRuns, oc.MergePasses, oc.TableBytes, oc.RunBufferBytes)
	fmt.Println("wrote", *out)
}
