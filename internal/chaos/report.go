package chaos

// FormatV1 identifies the chaos campaign report schema. The format string
// is versioned exactly like parahash.metrics/v1: consumers dispatch on it,
// and any breaking change to the schema bumps the suffix.
const FormatV1 = "parahash.chaos/v1"

// Violation is one broken invariant in one run.
type Violation struct {
	// Invariant names the contract that broke: "byte-identical",
	// "typed-error", "consistent-checkpoint", "resume-converges",
	// "gate-balance" or "goroutine-leak" in build mode; server mode adds
	// "server-lifecycle", "server-recovery", "journal-consistent",
	// "job-outcome" and "query-serving"; dist mode adds "dist-lifecycle",
	// "dist-governance" and "lease-clean".
	Invariant string `json:"invariant"`
	// Detail is the human-readable evidence.
	Detail string `json:"detail"`
}

// RunReport is one scenario's outcome. Seed alone replays it:
// `cmd/chaos -replay -seed <seed> -profile <profile>`.
type RunReport struct {
	// Run is the campaign-relative index.
	Run int `json:"run"`
	// Seed is this run's scenario seed (already derived from the root).
	// Encoded as a JSON string: seeds use the full int64 range, and a
	// numeric encoding silently loses low digits past 2^53 in jq/JS
	// consumers — a rounded seed replays a different scenario.
	Seed int64 `json:"seed,string"`
	// Faults describes the generated schedule.
	Faults []string `json:"faults"`
	// Outcome is "completed", "failed-typed" or "failed-untyped" in build
	// mode; "completed" or "failed" in server mode (where any non-done job
	// is also a "job-outcome" violation).
	Outcome string `json:"outcome"`
	// Error and ErrorClass carry a failed build's error text and its
	// matched classification.
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	// Resumed reports that the post-failure fault-free resume ran.
	Resumed bool `json:"resumed,omitempty"`
	// Violations lists every broken invariant (empty on a green run).
	Violations []Violation `json:"violations,omitempty"`
	// KeptDir is the checkpoint directory preserved for debugging when the
	// run violated an invariant (green runs' directories are removed).
	KeptDir string `json:"kept_dir,omitempty"`
	// Seconds is the run's wall-clock cost, including the differential
	// resume check.
	Seconds float64 `json:"seconds"`
}

// Report is a whole campaign in the parahash.chaos/v1 schema.
type Report struct {
	Format string `json:"format"`
	// Mode is "build" (direct pipeline builds), "server" (the parahashd
	// job-lifecycle manager under kill/drain/restart) or "dist" (the
	// coordinator/worker distributed build under process faults).
	Mode     string      `json:"mode,omitempty"`
	Profile  string      `json:"profile"`
	RootSeed int64       `json:"root_seed,string"`
	Started  string      `json:"started"`
	Finished string      `json:"finished"`
	Passed   int         `json:"passed"`
	Failed   int         `json:"failed"`
	Runs     []RunReport `json:"runs"`
}

// Green reports a campaign with zero invariant violations.
func (r *Report) Green() bool { return r.Failed == 0 }
