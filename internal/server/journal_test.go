package server

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Put(JobRecord{ID: "j0001", State: StateQueued, SubmittedUnix: 100}); err != nil {
		t.Fatal(err)
	}
	if err := j.Put(JobRecord{ID: "j0002", State: StateQueued, SubmittedUnix: 101}); err != nil {
		t.Fatal(err)
	}
	if err := j.Update("j0001", func(r *JobRecord) {
		r.State = StateDone
		r.Vertices = 42
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Update("j9999", func(*JobRecord) {}); err == nil {
		t.Error("update of unknown job succeeded")
	}

	// A reloaded journal sees the persisted mutations, in order.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	list := j2.List()
	if len(list) != 2 || list[0].ID != "j0001" || list[1].ID != "j0002" {
		t.Fatalf("reloaded list = %+v", list)
	}
	if r, _ := j2.Get("j0001"); r.State != StateDone || r.Vertices != 42 {
		t.Fatalf("reloaded j0001 = %+v", r)
	}
	if j2.MaxSeq() != 2 {
		t.Fatalf("MaxSeq = %d, want 2", j2.MaxSeq())
	}
}

func TestJournalRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	for _, body := range []string{
		"{torn",
		`{"schema":"parahash.jobs/v999","jobs":[]}`,
		`{"schema":"parahash.jobs/v1","jobs":[{"id":""}]}`,
		`{"schema":"parahash.jobs/v1","jobs":[{"id":"j1"},{"id":"j1"}]}`,
	} {
		if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenJournal(path); err == nil {
			t.Errorf("journal %q accepted, want error", body)
		}
	}
}
