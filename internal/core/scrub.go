package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"parahash/internal/diskstore"
	"parahash/internal/manifest"
)

// ScrubReport summarises a checkpoint-repair pass: what was swept, what
// verified, and what had to be quarantined for selective rebuild.
type ScrubReport struct {
	// ManifestPresent is false when the directory has no manifest at all —
	// nothing is claimed, so nothing can be damaged; only .tmp sweeping
	// applies.
	ManifestPresent bool
	// Step1Done mirrors the manifest flag. When false, no claim is
	// trustworthy (a crash mid-Step-1 journals nothing) and a resume
	// reruns everything, so Scrub verifies nothing.
	Step1Done bool
	// TmpSwept lists orphaned in-flight *.tmp files removed from the data
	// directory, sorted.
	TmpSwept []string
	// Step1Verified and Step2Verified count manifest claims whose backing
	// file passed full verification (size, decode, CRC / vertex count).
	Step1Verified int
	Step2Verified int
	// Step1Damaged and Step2Damaged count claims whose backing file failed
	// verification. Damaged Step 2 claims are dropped from the manifest;
	// damaged Step 1 files are quarantined but their claims kept, so a
	// resume sees the missing file and selectively rebuilds exactly those
	// partitions.
	Step1Damaged int
	Step2Damaged int
	// SpillVerified and SpillDamaged count journalled out-of-core run
	// claims by the same judgement resume assessment applies (size, CRC
	// footer, journalled checksum, sort order). A partition with any
	// damaged run — or an incomplete scan — has its whole spill state
	// dropped; the resume re-spills it from its Step 1 file. Only failed
	// verification counts as damage: dropping an incomplete scan's claims
	// is routine crash hygiene, not corruption.
	SpillVerified int
	SpillDamaged  int
	// SpillSwept lists orphaned spill run files removed from the data
	// directory (merge intermediates, runs of dropped claims, runs
	// superseded by a published subgraph), sorted.
	SpillSwept []string
	// Quarantined lists store names whose damaged bytes were moved into
	// the checkpoint's quarantine/ directory (a claim damaged by absence
	// has nothing to move), sorted.
	Quarantined []string
	// ManifestRepaired reports that damaged Step 2 claims were dropped and
	// the manifest re-journalled.
	ManifestRepaired bool
}

// Clean reports a checkpoint with nothing swept, nothing damaged — every
// claim verified against its durable bytes.
func (r ScrubReport) Clean() bool {
	return len(r.TmpSwept) == 0 && r.Step1Damaged == 0 && r.Step2Damaged == 0 &&
		r.SpillDamaged == 0 && len(r.SpillSwept) == 0
}

// Scrub is the offline checkpoint-repair pass: it verifies every manifest
// claim in dir against the durable bytes — the same judgement a resume's
// assessment applies — sweeps orphaned in-flight *.tmp files, and moves
// damaged partition files into dir/quarantine so the next resume
// selectively rebuilds them instead of tripping over bad bytes. It never
// deletes data it cannot account for: damaged files are moved aside, not
// removed, so an operator can inspect what went wrong.
//
// Scrub is safe to run repeatedly and on a checkpoint that was interrupted
// at any point; it mutates the manifest only to drop Step 2 claims whose
// artifact failed verification. A corrupt manifest is an error, not a
// repair: Scrub cannot distinguish a damaged journal from someone else's
// file, and a fresh (non-resume) build resets the directory anyway.
func Scrub(dir string) (ScrubReport, error) {
	var rep ScrubReport
	ds, err := diskstore.Open(filepath.Join(dir, "data"))
	if err != nil {
		return rep, fmt.Errorf("core: scrub: opening checkpoint store: %w", err)
	}
	swept, err := ds.SweepTmp()
	if err != nil {
		return rep, fmt.Errorf("core: scrub: sweeping in-flight files: %w", err)
	}
	rep.TmpSwept = swept

	manPath := filepath.Join(dir, "manifest.json")
	m, err := manifest.Load(manPath)
	switch {
	case os.IsNotExist(err):
		return rep, nil
	case err != nil:
		return rep, fmt.Errorf("core: scrub: %w", err)
	}
	rep.ManifestPresent = true
	rep.Step1Done = m.Step1Done
	if !m.Step1Done {
		// Nothing journalled as complete; the resume path distrusts the
		// whole directory, so there is no claim to verify or repair.
		return rep, nil
	}

	qdir := filepath.Join(dir, "quarantine")
	quarantine := func(name string) error {
		src := filepath.Join(ds.Root(), filepath.FromSlash(name))
		if _, err := os.Lstat(src); err != nil {
			if os.IsNotExist(err) {
				return nil // damaged by absence: nothing to move aside
			}
			return err
		}
		dst := filepath.Join(qdir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.Rename(src, dst); err != nil {
			return err
		}
		rep.Quarantined = append(rep.Quarantined, name)
		return nil
	}

	repaired := false
	// Outstanding worker leases belong to a coordinator that no longer
	// exists; a scrubbed checkpoint has no live fleet, so drop them (the
	// fencing-token high-water mark survives, keeping tokens unique across
	// the repair).
	if len(m.Leases) > 0 {
		m.ClearLeases()
		repaired = true
	}
	for i := 0; i < m.Partitions; i++ {
		if rec := m.Step2For(i); rec != nil {
			if _, ok := verifySubgraphFile(ds, rec); ok {
				rep.Step2Verified++
			} else {
				rep.Step2Damaged++
				if err := quarantine(rec.Name); err != nil {
					return rep, fmt.Errorf("core: scrub: quarantining %q: %w", rec.Name, err)
				}
				// Without its claim the resume re-executes the partition
				// from its (verified) Step 1 file.
				m.DropStep2(i)
				repaired = true
			}
		}
		// Spill claims: verify every journalled run; any damage — or an
		// incomplete scan — drops the partition's whole spill state so the
		// resume re-spills from the (verified) Step 1 file. k comes from the
		// run headers themselves; the manifest cross-checks size, checksum
		// and vertex count, which is what distinguishes a damaged run from a
		// well-formed but wrong one.
		if runs := m.SpillRunsFor(i); len(runs) > 0 || m.IsSpillDone(i) {
			damaged := false
			for _, rec := range runs {
				if verifySpillRunFile(ds, 0, rec) {
					rep.SpillVerified++
					continue
				}
				rep.SpillDamaged++
				damaged = true
				if err := quarantine(rec.Name); err != nil {
					return rep, fmt.Errorf("core: scrub: quarantining %q: %w", rec.Name, err)
				}
			}
			if damaged || !m.IsSpillDone(i) {
				m.DropSpill(i)
				repaired = true
			}
		}
		if rec := m.Step1For(i); verifyStep1File(ds, rec) {
			rep.Step1Verified++
		} else {
			rep.Step1Damaged++
			if rec != nil {
				if err := quarantine(rec.Name); err != nil {
					return rep, fmt.Errorf("core: scrub: quarantining %q: %w", rec.Name, err)
				}
			}
			// The claim stays: resume's assessment sees the now-missing
			// file, fails verification the same way, and selectively
			// rebuilds just this partition's Step 1 output.
		}
	}
	if repaired {
		if err := m.Save(manPath); err != nil {
			return rep, fmt.Errorf("core: scrub: repairing manifest: %w", err)
		}
		rep.ManifestRepaired = true
	}

	// Sweep orphaned spill files: merge intermediates (never journalled),
	// runs of claims dropped above, and runs superseded by a published
	// subgraph. Every surviving claim was verified, so anything under
	// spill/ not claimed is reconstructible in-flight state, removed like a
	// *.tmp file. The sweep runs only after the repaired manifest is saved —
	// removing a file before its claim is durably dropped would turn a crash
	// here into phantom damage on the next pass.
	claimed := make(map[string]bool, len(m.SpillRuns))
	for _, rec := range m.SpillRuns {
		claimed[rec.Name] = true
	}
	names, err := ds.List()
	if err != nil {
		return rep, fmt.Errorf("core: scrub: listing store: %w", err)
	}
	for _, name := range names {
		if strings.HasPrefix(name, "spill/") && !claimed[name] {
			if err := ds.Remove(name); err != nil {
				return rep, fmt.Errorf("core: scrub: sweeping %q: %w", name, err)
			}
			rep.SpillSwept = append(rep.SpillSwept, name)
		}
	}
	sort.Strings(rep.SpillSwept)
	sort.Strings(rep.Quarantined)
	return rep, nil
}
