package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"parahash/internal/chaos"
)

func TestRunSmallCampaign(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-profile", "small", "-seed", "7", "-runs", "3", "-dir", t.TempDir()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	var rep chaos.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Format != chaos.FormatV1 {
		t.Fatalf("format = %q, want %q", rep.Format, chaos.FormatV1)
	}
	if len(rep.Runs) != 3 || !rep.Green() {
		t.Fatalf("campaign: %+v", rep)
	}
}

func TestRunReplaySingleSeed(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-profile", "small", "-replay", "-seed", "12345", "-dir", t.TempDir()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	var rep chaos.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Seed != 12345 {
		t.Fatalf("replay did not use the literal seed: %+v", rep.Runs)
	}
}

func TestRunServerModeCampaign(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-mode", "server", "-profile", "small", "-seed", "7", "-runs", "2", "-dir", t.TempDir()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	var rep chaos.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Mode != "server" || len(rep.Runs) != 2 || !rep.Green() {
		t.Fatalf("server campaign: %+v", rep)
	}
}

func TestRunDistModeCampaign(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-mode", "dist", "-profile", "small", "-seed", "7", "-runs", "2", "-dir", t.TempDir()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	var rep chaos.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Mode != "dist" || len(rep.Runs) != 2 || !rep.Green() {
		t.Fatalf("dist campaign: %+v", rep)
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	if code, err := run([]string{"-mode", "cosmic"}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Fatalf("unknown mode: code=%d err=%v", code, err)
	}
}

func TestRunRejectsUnknownProfile(t *testing.T) {
	if code, err := run([]string{"-profile", "galactic"}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Fatalf("unknown profile: code=%d err=%v", code, err)
	}
}
