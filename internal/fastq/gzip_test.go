package fastq

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"parahash/internal/dna"
)

func TestReadAllAutoPlain(t *testing.T) {
	reads, err := ReadAllAuto(strings.NewReader(sampleFASTQ))
	if err != nil || len(reads) != 2 {
		t.Fatalf("plain auto-read: %v, %d reads", err, len(reads))
	}
}

func TestReadAllAutoGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(sampleFASTQ)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	reads, err := ReadAllAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 || dna.DecodeSeq(reads[0].Bases) != "ACGTACGT" {
		t.Fatalf("gzip auto-read wrong: %d reads", len(reads))
	}
}

func TestWriteFASTQGzipRoundTrip(t *testing.T) {
	orig := []Read{
		{ID: "x", Bases: dna.EncodeSeq(nil, "ACGTACGTAA")},
		{ID: "y", Bases: dna.EncodeSeq(nil, "TTTTGGGGCC")},
	}
	var buf bytes.Buffer
	if err := WriteFASTQGzip(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Must actually be gzip.
	if buf.Bytes()[0] != 0x1f || buf.Bytes()[1] != 0x8b {
		t.Fatal("output is not gzip")
	}
	reads, err := ReadAllAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 || reads[1].ID != "y" {
		t.Fatalf("round trip: %d reads", len(reads))
	}
}

func TestReadAllAutoEmpty(t *testing.T) {
	reads, err := ReadAllAuto(strings.NewReader(""))
	if err != nil || len(reads) != 0 {
		t.Fatalf("empty auto-read: %v, %d", err, len(reads))
	}
}

func TestReadAllAutoCorruptGzip(t *testing.T) {
	// Correct magic, garbage body.
	if _, err := ReadAllAuto(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00})); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}

func TestReadAllAutoOneByte(t *testing.T) {
	// A single '@' can't be peeked as gzip and should fall through to the
	// parser (which reports a malformed record).
	if _, err := ReadAllAuto(strings.NewReader("@")); err == nil {
		t.Fatal("truncated record accepted")
	}
}
